"""Kernel-execution engines behind the costed block-BLAS layer.

The :mod:`repro.distla.blas` functions describe *what* a distributed
operation computes and charges; an engine decides *how* the per-rank
NumPy work executes:

* :class:`LoopEngine` — the reference path: one Python-level BLAS call
  per simulated rank (one GEMM per shard, one cost evaluation per rank).
* :class:`BatchedEngine` — executes equal-sized shards as a single
  batched kernel over the contiguous ``(ranks, rows, k)`` stack that
  :class:`~repro.distla.multivector.DistMultiVector` keeps for uniform
  partitions: ``block_dot`` becomes one ``matmul`` over the rank axis,
  ``lincomb``/``scale`` become whole-stack streaming ops, and the
  reduction tree folds with one vectorized add per level.  Any operand
  without a stack (ragged partition, caller-supplied shards) falls back
  to the loop path op-by-op, so results and charged costs never depend
  on which constructor built the vector.

Both engines preserve the MPI-faithful pairwise reduction order (see
:class:`~repro.parallel.communicator.SimComm`) and charge identical
modeled costs: uniform partitions make the per-rank cost formula the
same on every rank, so ``max(costs)`` equals the single evaluated value.

Selection: pass ``engine="loop"|"batched"`` to a blas call or a
:class:`~repro.ortho.backend.DistBackend`, bind one per communicator
(``SimComm(..., engine=...)``), or set the process default through
:func:`repro.config.set_engine` / the ``REPRO_ENGINE`` variable.

Storage precision: operands may store ``fp32``/``bf16`` (see
:mod:`repro.precision`).  Both engines then follow the same contract:
shard-local partials are *accumulated in float64* (unless every operand
explicitly opts into native ``fp32`` accumulation), the reduction tree
is always float64, and results written back into low-precision storage
are rounded to the storage grid.  Loop and batched paths apply the
identical casts in the identical order, so results stay bit-identical
per dtype, and local kernels are charged at the operands' storage word
size (``fp32`` panels move half the fp64 bytes).  All-fp64 operands
take the exact historical code paths.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg

from repro import config


def _all_fp64(*mvs) -> bool:
    """True when every operand stores fp64 (the historical fast paths)."""
    return all(mv.storage == "fp64" for mv in mvs)


def _acc_dtype(*mvs) -> np.dtype:
    """Dtype shard-local partials accumulate in before the fp64 tree.

    float64 unless *every* operand is low-precision storage that opted
    into native fp32 accumulation (``PrecisionPolicy(accumulate="fp32")``).
    """
    if all(mv.storage != "fp64" and mv.accumulate == "fp32" for mv in mvs):
        return np.dtype(np.float32)
    return np.dtype(np.float64)


def _cast(arr: np.ndarray, dtype: np.dtype) -> np.ndarray:
    """``astype`` that is a no-op (same object) when already ``dtype``."""
    return arr if arr.dtype == dtype else arr.astype(dtype)


def _wb(*mvs) -> float:
    """Charged word size of a kernel over ``mvs`` (largest operand wins:
    mixed-precision kernels still stream their widest operand)."""
    return max(mv.word_bytes for mv in mvs)


class KernelEngine:
    """Common interface; concrete engines implement the kernel bodies."""

    name: str = "abstract"

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


# ---------------------------------------------------------------------------
# loop engine (reference semantics)
# ---------------------------------------------------------------------------

class LoopEngine(KernelEngine):
    """One NumPy call per simulated rank — the reference execution path."""

    name = config.ENGINE_LOOP

    # -- reductions -----------------------------------------------------
    def block_dot(self, x, y) -> np.ndarray:
        comm = x.comm
        acc = _acc_dtype(x, y)
        partials = [_cast(xs, acc).T @ _cast(ys, acc)
                    for xs, ys in zip(x.shards, y.shards)]
        costs = [comm.cost.gemm(xs.shape[0], x.n_cols, y.n_cols,
                                word_bytes=_wb(x, y))
                 for xs in x.shards]
        comm.charge_local("dot", costs)
        return comm.allreduce_sum(partials)

    def block_dot_multi(self, pairs) -> list[np.ndarray]:
        comm = pairs[0][0].comm
        groups = []
        for x, y in pairs:
            acc = _acc_dtype(x, y)
            groups.append([_cast(xs, acc).T @ _cast(ys, acc)
                           for xs, ys in zip(x.shards, y.shards)])
            costs = [comm.cost.gemm(xs.shape[0], x.n_cols, y.n_cols,
                                    word_bytes=_wb(x, y))
                     for xs in x.shards]
            comm.charge_local("dot", costs)
        return comm.fused_allreduce_sum(groups)

    def post_block_dot_multi(self, pairs):
        """Posted :meth:`block_dot_multi`: local partials (and their
        charges) now, the fused allreduce in flight — settle with
        ``comm.wait(handle)``.  Per-group trees are independent, so the
        results are bit-identical to the blocking call."""
        comm = pairs[0][0].comm
        groups = []
        for x, y in pairs:
            acc = _acc_dtype(x, y)
            groups.append([_cast(xs, acc).T @ _cast(ys, acc)
                           for xs, ys in zip(x.shards, y.shards)])
            costs = [comm.cost.gemm(xs.shape[0], x.n_cols, y.n_cols,
                                    word_bytes=_wb(x, y))
                     for xs in x.shards]
            comm.charge_local("dot", costs)
        return comm.post_ifused_allreduce_sum(groups)

    def column_norms(self, x) -> np.ndarray:
        comm = x.comm
        acc = _acc_dtype(x)
        partials = []
        for s in x.shards:
            ss = _cast(s, acc)
            partials.append(np.einsum("ij,ij->j", ss, ss))
        costs = [comm.cost.blas1(s.size, n_streams=1, writes=0,
                                 word_bytes=x.word_bytes)
                 for s in x.shards]
        comm.charge_local("norm", costs)
        sq = comm.allreduce_sum(partials)
        return np.sqrt(sq)

    # -- local (communication-free) updates ------------------------------
    def block_update(self, v, q, r: np.ndarray) -> None:
        comm = v.comm
        if _all_fp64(v, q):
            for vs, qs in zip(v.shards, q.shards):
                vs -= qs @ r
        else:
            f64 = np.dtype(np.float64)
            for vs, qs in zip(v.shards, q.shards):
                vs[...] = v.quantize(_cast(vs, f64) - _cast(qs, f64) @ r)
        costs = [comm.cost.gemm_tall_update(vs.shape[0], q.n_cols, v.n_cols,
                                            word_bytes=_wb(v, q))
                 for vs in v.shards]
        comm.charge_local("update", costs)

    def trsm_inplace(self, v, r: np.ndarray) -> None:
        comm = v.comm
        k = v.n_cols
        f64 = np.dtype(np.float64)
        fast = _all_fp64(v)
        for vs in v.shards:
            if vs.shape[0]:
                # Solve R.T x.T = v.T  <=>  x = v R^{-1}; use the transposed
                # triangular solve to stay in C-contiguous layout.
                solved = scipy.linalg.solve_triangular(
                    r, _cast(vs, f64).T, trans="T", lower=False).T
                vs[...] = solved if fast else v.quantize(solved)
        costs = [comm.cost.trsm(vs.shape[0], k, word_bytes=v.word_bytes)
                 for vs in v.shards]
        comm.charge_local("trsm", costs)

    def scale_columns(self, v, scales: np.ndarray) -> None:
        comm = v.comm
        if _all_fp64(v):
            for vs in v.shards:
                vs *= scales[np.newaxis, :]
        else:
            f64 = np.dtype(np.float64)
            for vs in v.shards:
                vs[...] = v.quantize(_cast(vs, f64) * scales[np.newaxis, :])
        costs = [comm.cost.blas1(vs.size, n_streams=1, writes=1,
                                 word_bytes=v.word_bytes)
                 for vs in v.shards]
        comm.charge_local("scale", costs)

    def lincomb(self, out, terms) -> None:
        comm = out.comm
        fast = _all_fp64(out, *[t[1] for t in terms])
        f64 = np.dtype(np.float64)
        for r, outs in enumerate(out.shards):
            if fast:
                acc = terms[0][0] * terms[0][1].shards[r]
                for alpha, x in terms[1:]:
                    acc += alpha * x.shards[r]
                outs[...] = acc
            else:
                acc = terms[0][0] * _cast(terms[0][1].shards[r], f64)
                for alpha, x in terms[1:]:
                    acc += alpha * _cast(x.shards[r], f64)
                outs[...] = out.quantize(acc)
        costs = [comm.cost.blas1(s.size, n_streams=len(terms), writes=1,
                                 word_bytes=_wb(out, *[t[1] for t in terms]))
                 for s in out.shards]
        comm.charge_local("axpy", costs)

    def copy_into(self, dst, src) -> None:
        comm = dst.comm
        dst.assign_from(src)  # rounds to dst's storage grid when needed
        costs = [comm.cost.blas1(s.size, n_streams=1, writes=1,
                                 word_bytes=_wb(dst, src))
                 for s in src.shards]
        comm.charge_local("axpy", costs)

    def matvec_small(self, v, coeffs: np.ndarray, out) -> None:
        comm = v.comm
        if _all_fp64(v, out):
            for vs, outs in zip(v.shards, out.shards):
                outs[...] = vs @ coeffs
        else:
            f64 = np.dtype(np.float64)
            for vs, outs in zip(v.shards, out.shards):
                outs[...] = out.quantize(_cast(vs, f64) @ coeffs)
        costs = [comm.cost.gemm(vs.shape[0], v.n_cols, out.n_cols,
                                word_bytes=_wb(v, out))
                 for vs in v.shards]
        comm.charge_local("update", costs)

    # -- sketching --------------------------------------------------------
    def _sketch_partials(self, v, op) -> list[np.ndarray]:
        """Per-rank contributions ``S[:, rows_r] @ V_r`` + local charge.

        ``op`` is duck-typed (a :class:`repro.sketch.operators`
        ``SketchOperator``): ``partial(shard, row_offset)`` produces one
        shard's contribution, ``local_cost`` its modeled seconds.
        """
        comm = v.comm
        offsets = v.partition.offsets
        # operators upcast low-precision shards internally, so partial
        # sketches are always fp64-accumulated; charge at the storage
        # word size (the shard stream dominates the sketch kernel)
        partials = [op.partial(shard, int(offsets[r]))
                    for r, shard in enumerate(v.shards)]
        # sketch application runs on the driver process under the mp
        # backend (see ROADMAP), so tag the charge for calibration
        comm.charge_local(
            "dot", [op.local_cost(comm.cost, s.shape[0], v.n_cols,
                                  word_bytes=v.word_bytes)
                    for s in v.shards], driver_side=True)
        return partials

    def sketch_apply(self, v, op) -> np.ndarray:
        """Global sketch ``S @ V``: shard-local partials, one allreduce."""
        return v.comm.allreduce_sum(self._sketch_partials(v, op))

    def fused_dot_sketch(self, pairs, v, op
                         ) -> tuple[list[np.ndarray], np.ndarray]:
        """Several ``X.T @ Y`` plus one sketch ``S @ V`` in ONE collective.

        The randomized schemes' analogue of BCGS-PIP fusion: projection
        coefficients and the panel sketch travel in a single message.
        """
        comm = v.comm
        groups = []
        for x, y in pairs:
            acc = _acc_dtype(x, y)
            groups.append([_cast(xs, acc).T @ _cast(ys, acc)
                           for xs, ys in zip(x.shards, y.shards)])
            comm.charge_local(
                "dot", [comm.cost.gemm(xs.shape[0], x.n_cols, y.n_cols,
                                       word_bytes=_wb(x, y))
                        for xs in x.shards])
        groups.append(self._sketch_partials(v, op))
        results = comm.fused_allreduce_sum(groups)
        return results[:-1], results[-1]


# ---------------------------------------------------------------------------
# batched engine
# ---------------------------------------------------------------------------

class BatchedEngine(LoopEngine):
    """Single batched kernels over ``(ranks, rows, k)`` shard stacks.

    Inherits the loop implementations as the ragged/unstacked fallback;
    every override first checks that all operands carry a stack.
    """

    name = config.ENGINE_BATCHED

    #: Element cutoff (per operand stack) above which write-heavy kernels
    #: keep the per-rank loop: one rank's shard fits in cache, so the loop
    #: is effectively cache-tiled, while streaming a multi-MB stack plus
    #: its temporaries goes to DRAM.  GEMM reductions (``block_dot``) are
    #: exempt — BLAS tiles those internally, so batching never loses.
    #: Both paths are elementwise-identical, so this is purely a speed
    #: heuristic, never a semantics switch.
    stream_elems_max: int = 131_072  # 1 MiB of float64 per operand

    @staticmethod
    def _stacks(*mvs) -> list[np.ndarray] | None:
        stacks = [mv.stack for mv in mvs]
        if any(s is None for s in stacks):
            return None
        return stacks

    def _stream_stacks(self, *mvs) -> list[np.ndarray] | None:
        """Stacks for a write-heavy streaming kernel, or None to fall back
        (missing stack, or the written operand exceeds the cache cutoff)."""
        stacks = self._stacks(*mvs)
        if stacks is None or stacks[0].size > self.stream_elems_max:
            return None
        return stacks

    # -- reductions -----------------------------------------------------
    def block_dot(self, x, y) -> np.ndarray:
        stacks = self._stacks(x, y)
        if stacks is None:
            return super().block_dot(x, y)
        xs, ys = stacks
        comm = x.comm
        acc = _acc_dtype(x, y)
        partials = np.matmul(_cast(xs, acc).transpose(0, 2, 1), _cast(ys, acc))
        comm.charge_uniform(
            "dot", comm.cost.gemm(xs.shape[1], x.n_cols, y.n_cols,
                                  word_bytes=_wb(x, y)))
        return comm.allreduce_sum_stacked(partials)

    def block_dot_multi(self, pairs) -> list[np.ndarray]:
        stacks = []
        for x, y in pairs:
            s = self._stacks(x, y)
            if s is None:
                return super().block_dot_multi(pairs)
            stacks.append(s)
        comm = pairs[0][0].comm
        groups = []
        for (xs, ys), (x, y) in zip(stacks, pairs):
            acc = _acc_dtype(x, y)
            groups.append(np.matmul(_cast(xs, acc).transpose(0, 2, 1),
                                    _cast(ys, acc)))
            comm.charge_uniform(
                "dot", comm.cost.gemm(xs.shape[1], x.n_cols, y.n_cols,
                                      word_bytes=_wb(x, y)))
        return comm.fused_allreduce_sum_stacked(groups)

    def post_block_dot_multi(self, pairs):
        stacks = []
        for x, y in pairs:
            s = self._stacks(x, y)
            if s is None:
                return super().post_block_dot_multi(pairs)
            stacks.append(s)
        comm = pairs[0][0].comm
        groups = []
        for (xs, ys), (x, y) in zip(stacks, pairs):
            acc = _acc_dtype(x, y)
            groups.append(np.matmul(_cast(xs, acc).transpose(0, 2, 1),
                                    _cast(ys, acc)))
            comm.charge_uniform(
                "dot", comm.cost.gemm(xs.shape[1], x.n_cols, y.n_cols,
                                      word_bytes=_wb(x, y)))
        return comm.post_ifused_allreduce_sum_stacked(groups)

    def column_norms(self, x) -> np.ndarray:
        stack = x.stack
        if stack is None:
            return super().column_norms(x)
        comm = x.comm
        work = _cast(stack, _acc_dtype(x))
        partials = np.einsum("rij,rij->rj", work, work)
        comm.charge_uniform(
            "norm", comm.cost.blas1(stack[0].size, n_streams=1, writes=0,
                                    word_bytes=x.word_bytes))
        sq = comm.allreduce_sum_stacked(partials)
        return np.sqrt(sq)

    # -- local updates ----------------------------------------------------
    def block_update(self, v, q, r: np.ndarray) -> None:
        stacks = self._stream_stacks(v, q)
        if stacks is None:
            return super().block_update(v, q, r)
        sv, sq = stacks
        comm = v.comm
        if _all_fp64(v, q):
            sv -= np.matmul(sq, r)
        else:
            f64 = np.dtype(np.float64)
            sv[...] = v.quantize(_cast(sv, f64) - np.matmul(_cast(sq, f64), r))
        comm.charge_uniform(
            "update",
            comm.cost.gemm_tall_update(sv.shape[1], q.n_cols, v.n_cols,
                                       word_bytes=_wb(v, q)))

    def trsm_inplace(self, v, r: np.ndarray) -> None:
        stack = v.stack
        if stack is None:
            return super().trsm_inplace(v, r)
        comm = v.comm
        ranks, rows, k = stack.shape
        if rows and k:
            # One triangular solve over all ranks' rows; reshape copies
            # only when the stack is a strided column view.
            flat = _cast(stack, np.dtype(np.float64)).reshape(ranks * rows, k)
            solved = scipy.linalg.solve_triangular(
                r, flat.T, trans="T", lower=False).T
            solved = solved.reshape(ranks, rows, k)
            stack[...] = (solved if _all_fp64(v) else v.quantize(solved))
        comm.charge_uniform("trsm", comm.cost.trsm(rows, k,
                                                   word_bytes=v.word_bytes))

    def scale_columns(self, v, scales: np.ndarray) -> None:
        stacks = self._stream_stacks(v)
        if stacks is None:
            return super().scale_columns(v, scales)
        stack = stacks[0]
        comm = v.comm
        if _all_fp64(v):
            stack *= scales[np.newaxis, np.newaxis, :]
        else:
            f64 = np.dtype(np.float64)
            stack[...] = v.quantize(_cast(stack, f64)
                                    * scales[np.newaxis, np.newaxis, :])
        comm.charge_uniform(
            "scale", comm.cost.blas1(stack[0].size, n_streams=1, writes=1,
                                     word_bytes=v.word_bytes))

    def lincomb(self, out, terms) -> None:
        stacks = self._stream_stacks(out, *[t[1] for t in terms])
        if stacks is None:
            return super().lincomb(out, terms)
        comm = out.comm
        fast = _all_fp64(out, *[t[1] for t in terms])
        f64 = np.dtype(np.float64)
        if fast:
            acc = terms[0][0] * stacks[1]
            for (alpha, _), stack in zip(terms[1:], stacks[2:]):
                acc += alpha * stack
            stacks[0][...] = acc
        else:
            acc = terms[0][0] * _cast(stacks[1], f64)
            for (alpha, _), stack in zip(terms[1:], stacks[2:]):
                acc += alpha * _cast(stack, f64)
            stacks[0][...] = out.quantize(acc)
        comm.charge_uniform(
            "axpy",
            comm.cost.blas1(stacks[0][0].size, n_streams=len(terms), writes=1,
                            word_bytes=_wb(out, *[t[1] for t in terms])))

    def copy_into(self, dst, src) -> None:
        stacks = self._stream_stacks(dst, src)
        if stacks is None:
            return super().copy_into(dst, src)
        comm = dst.comm
        stacks[0][...] = (stacks[1] if dst.storage == src.storage
                          else dst.quantize(stacks[1]))
        comm.charge_uniform(
            "axpy", comm.cost.blas1(stacks[1][0].size, n_streams=1, writes=1,
                                    word_bytes=_wb(dst, src)))

    def matvec_small(self, v, coeffs: np.ndarray, out) -> None:
        stacks = self._stream_stacks(out, v)
        if stacks is None:
            return super().matvec_small(v, coeffs, out)
        sout, sv = stacks
        comm = v.comm
        if _all_fp64(v, out):
            sout[...] = np.matmul(sv, coeffs)
        else:
            sout[...] = out.quantize(np.matmul(_cast(sv, np.dtype(np.float64)),
                                               coeffs))
        comm.charge_uniform(
            "update", comm.cost.gemm(sv.shape[1], v.n_cols, out.n_cols,
                                     word_bytes=_wb(v, out)))

    # -- sketching --------------------------------------------------------
    def _sketch_partials_stacked(self, v, op) -> "np.ndarray | None":
        """``(ranks, m, k)`` contribution stack, or None to fall back."""
        stack = v.stack
        if stack is None:
            return None
        comm = v.comm
        partials = op.partial_stack(stack)
        comm.charge_uniform(
            "dot", op.local_cost(comm.cost, stack.shape[1], v.n_cols,
                                 word_bytes=v.word_bytes), driver_side=True)
        return partials

    def sketch_apply(self, v, op) -> np.ndarray:
        partials = self._sketch_partials_stacked(v, op)
        if partials is None:
            return super().sketch_apply(v, op)
        return v.comm.allreduce_sum_stacked(partials)

    def fused_dot_sketch(self, pairs, v, op
                         ) -> tuple[list[np.ndarray], np.ndarray]:
        stacks = []
        for x, y in pairs:
            s = self._stacks(x, y)
            if s is None:
                return super().fused_dot_sketch(pairs, v, op)
            stacks.append(s)
        if v.stack is None:
            return super().fused_dot_sketch(pairs, v, op)
        comm = v.comm
        groups = []
        for (xs, ys), (x, y) in zip(stacks, pairs):
            acc = _acc_dtype(x, y)
            groups.append(np.matmul(_cast(xs, acc).transpose(0, 2, 1),
                                    _cast(ys, acc)))
            comm.charge_uniform(
                "dot", comm.cost.gemm(xs.shape[1], x.n_cols, y.n_cols,
                                      word_bytes=_wb(x, y)))
        groups.append(self._sketch_partials_stacked(v, op))
        results = comm.fused_allreduce_sum_stacked(groups)
        return results[:-1], results[-1]


# ---------------------------------------------------------------------------
# resolution
# ---------------------------------------------------------------------------

_INSTANCES: dict[str, KernelEngine] = {
    config.ENGINE_LOOP: LoopEngine(),
    config.ENGINE_BATCHED: BatchedEngine(),
}

# config.validate_engine (used by SimComm/DistBackend constructors) and
# this dispatch registry must never drift apart, or a name accepted at a
# binding site would still blow up inside the first BLAS call.
assert set(_INSTANCES) == set(config.ENGINES), \
    "engine registry out of sync with repro.config.ENGINES"


def get_engine(name: str) -> KernelEngine:
    """Engine singleton for ``name`` (``"loop"`` or ``"batched"``)."""
    try:
        return _INSTANCES[name]
    except KeyError:
        raise ValueError(
            f"unknown engine {name!r}; expected one of "
            f"{tuple(_INSTANCES)}") from None


def resolve(engine: "str | KernelEngine | None", comm=None) -> KernelEngine:
    """Resolve an engine: explicit arg > communicator binding > config."""
    if isinstance(engine, KernelEngine):
        return engine
    if engine is not None:
        return get_engine(engine)
    if comm is not None and getattr(comm, "engine", None) is not None:
        return get_engine(comm.engine)
    return get_engine(config.get_engine())
