"""Costed block-BLAS over :class:`DistMultiVector`.

Each function (i) runs the real per-rank NumPy kernels, (ii) combines
partial results through the communicator with MPI-faithful tree order, and
(iii) charges modeled time: local kernels cost ``max`` across concurrent
ranks; reductions cost one (possibly fused) allreduce.

Kernel attribution matches the paper's breakdown figures: Gram/projection
GEMMs are charged to ``dot`` (paper: "dot-products"), tall ``V -= Q R``
GEMMs to ``update`` ("vector-updates"), triangular scaling to ``trsm``.

Execution strategy is pluggable: this module validates shapes and then
dispatches to a :mod:`repro.distla.engine` kernel engine — the per-rank
``"loop"`` reference or the ``"batched"`` stacked path — resolved from
the optional ``engine`` argument, the communicator binding, or
:func:`repro.config.get_engine`.  Both engines produce the same reduction
order and charge identical modeled costs.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.dd.linalg import matmul_dd
from repro.distla import engine as _engine
from repro.distla.multivector import DistMultiVector
from repro.exceptions import ShapeError

#: What the ``engine`` argument accepts: a name, an engine instance, or
#: None (defer to the communicator binding / process default).
EngineLike = Optional[Union[str, _engine.KernelEngine]]


def _check_same_partition(*mvs: DistMultiVector) -> None:
    first = mvs[0]
    for mv in mvs[1:]:
        if mv.partition != first.partition:
            raise ShapeError("operands live on different partitions")
        if mv.comm is not first.comm:
            raise ShapeError("operands bound to different communicators")


# ---------------------------------------------------------------------------
# reductions
# ---------------------------------------------------------------------------

def block_dot(x: DistMultiVector, y: DistMultiVector,
              engine: EngineLike = None) -> np.ndarray:
    """Global ``X.T @ Y`` — one GEMM per rank + one allreduce.

    Returns the ``(kx, ky)`` result, replicated (conceptually) on every
    rank, as in the paper Sec. VII: "the resulting matrix ... is stored
    redundantly on all the MPI processes".
    """
    _check_same_partition(x, y)
    return _engine.resolve(engine, x.comm).block_dot(x, y)


def block_dot_multi(pairs: list[tuple[DistMultiVector, DistMultiVector]],
                    engine: EngineLike = None) -> list[np.ndarray]:
    """Several ``X.T @ Y`` products fused into a *single* allreduce.

    This is the communication pattern that makes BCGS-PIP a "single-reduce"
    algorithm: ``[Q, V].T @ V`` requires the products ``Q.T @ V`` and
    ``V.T @ V`` which travel in one message.
    """
    if not pairs:
        return []
    comm = pairs[0][0].comm
    for x, y in pairs:
        _check_same_partition(x, y)
        if x.comm is not comm:
            raise ShapeError("fused dots must share a communicator")
    return _engine.resolve(engine, comm).block_dot_multi(pairs)


def block_dot_batched(groups: list[list[tuple[DistMultiVector,
                                              DistMultiVector]]],
                      engine: EngineLike = None) -> list[list[np.ndarray]]:
    """One :func:`block_dot_multi` per member, ONE charged pass overall.

    ``groups`` holds one pair-list per batch member (one solve's fused
    Gram products, say).  Values are bit-identical to per-member
    :func:`block_dot_multi` calls — each member keeps its own reduction
    trees — but the modeled charges fuse under
    :class:`repro.parallel.batch.BatchCharges`: the batch pays ONE
    allreduce launch whose payload carries every member's message, so
    the collective count stays width-independent while the wire bytes
    grow with the batch.  Empty member groups are legal and return
    ``[]`` for that member.
    """
    if not groups:
        return []
    comms = [p[0][0].comm for p in groups if p]
    if not comms:
        return [[] for _ in groups]
    comm = comms[0]
    if any(c is not comm for c in comms):
        raise ShapeError("batched dots must share a communicator")
    from repro.parallel.batch import BatchCharges
    out: list[list[np.ndarray]] = []
    with BatchCharges(comm) as batch:
        with batch.group():
            for pairs in groups:
                with batch.member():
                    out.append(block_dot_multi(pairs, engine=engine))
    return out


def post_block_dot_multi(pairs: list[tuple[DistMultiVector, DistMultiVector]],
                         engine: EngineLike = None):
    """Posted :func:`block_dot_multi`: partials and their charges now,
    the fused allreduce posted nonblocking.

    Returns a :class:`~repro.parallel.communicator.CommRequest`; settle
    with ``request.comm.wait(request)``, which yields the same list of
    reduced arrays — bit-identical to the blocking call — and charges
    only the exposed (non-overlapped) remainder of the collective.
    ``pairs`` must be non-empty: an empty post has no communicator to
    draw a request from.
    """
    if not pairs:
        raise ShapeError("post_block_dot_multi needs at least one pair")
    comm = pairs[0][0].comm
    for x, y in pairs:
        _check_same_partition(x, y)
        if x.comm is not comm:
            raise ShapeError("fused dots must share a communicator")
    return _engine.resolve(engine, comm).post_block_dot_multi(pairs)


def dot_dd_dist(x: DistMultiVector, y: DistMultiVector
                ) -> tuple[np.ndarray, np.ndarray]:
    """Double-double accurate ``X.T @ Y`` with a fused dd allreduce.

    Per-rank partial Gram matrices are accumulated in dd
    (:func:`repro.dd.linalg.matmul_dd`), the (hi, lo) pairs travel in one
    collective of twice the payload, and ranks combine them with dd
    addition.  Local flops are charged at the dd penalty factor; the
    communication grows only 2x — the defining trade-off of the
    mixed-precision CholQR [26].
    """
    _check_same_partition(x, y)
    comm = x.comm
    his, los = [], []
    for xs, ys in zip(x.shards, y.shards):
        hi, lo = matmul_dd(xs, ys)
        his.append(hi)
        los.append(lo)
    dd_pen = comm.cost.dd_factor()
    # the panel streams at its storage word size (fp32 shards move half
    # the fp64 bytes); only the dd flop penalty is precision-independent
    wb = max(x.word_bytes, y.word_bytes)
    costs = []
    for xs in x.shards:
        base = comm.cost.gemm(xs.shape[0], x.n_cols, y.n_cols, word_bytes=wb)
        flops_term = (2.0 * xs.shape[0] * x.n_cols * y.n_cols * dd_pen
                      / comm.machine.peak_flops)
        costs.append(max(base, comm.machine.kernel_latency + flops_term))
    comm.charge_local("dot", costs)
    # One collective, double payload; combining in dd keeps full accuracy
    # (the communicator folds the (hi, lo) pairs in tree order).
    return comm.allreduce_dd(his, los)


def column_norms(x: DistMultiVector,
                 engine: EngineLike = None) -> np.ndarray:
    """2-norms of each column (one fused allreduce)."""
    return _engine.resolve(engine, x.comm).column_norms(x)


# ---------------------------------------------------------------------------
# local (communication-free) updates
# ---------------------------------------------------------------------------

def block_update(v: DistMultiVector, q: DistMultiVector,
                 r: np.ndarray, engine: EngineLike = None) -> None:
    """In-place tall update ``V -= Q @ R`` (no communication).

    ``r`` is the replicated small matrix from a previous reduction.
    """
    _check_same_partition(v, q)
    r = np.asarray(r, dtype=np.float64)
    if r.shape != (q.n_cols, v.n_cols):
        raise ShapeError(
            f"R has shape {r.shape}, expected ({q.n_cols}, {v.n_cols})")
    _engine.resolve(engine, v.comm).block_update(v, q, r)


def trsm_inplace(v: DistMultiVector, r: np.ndarray,
                 engine: EngineLike = None) -> None:
    """In-place ``V <- V @ R^{-1}`` with upper-triangular replicated ``R``."""
    r = np.asarray(r, dtype=np.float64)
    k = v.n_cols
    if r.shape != (k, k):
        raise ShapeError(f"R has shape {r.shape}, expected ({k}, {k})")
    _engine.resolve(engine, v.comm).trsm_inplace(v, r)


def scale_columns(v: DistMultiVector, scales: np.ndarray,
                  engine: EngineLike = None) -> None:
    """In-place per-column scaling ``V[:, j] *= scales[j]``."""
    scales = np.asarray(scales, dtype=np.float64)
    if scales.shape != (v.n_cols,):
        raise ShapeError(f"scales has shape {scales.shape}, expected ({v.n_cols},)")
    _engine.resolve(engine, v.comm).scale_columns(v, scales)


def lincomb(out: DistMultiVector, terms: list[tuple[float, DistMultiVector]],
            engine: EngineLike = None) -> None:
    """``out <- sum_i alpha_i X_i`` (streaming axpy chain, no comm)."""
    if not terms:
        out.fill(0.0)
        return
    _check_same_partition(out, *[t[1] for t in terms])
    _engine.resolve(engine, out.comm).lincomb(out, terms)


def copy_into(dst: DistMultiVector, src: DistMultiVector,
              engine: EngineLike = None) -> None:
    """Costed device copy ``dst <- src`` (one read + one write stream)."""
    _check_same_partition(dst, src)
    _engine.resolve(engine, dst.comm).copy_into(dst, src)


def matvec_small(v: DistMultiVector, coeffs: np.ndarray,
                 out: DistMultiVector, engine: EngineLike = None) -> None:
    """``out <- V @ coeffs`` where coeffs is a replicated small matrix.

    Used for forming the approximate solution ``x += V_m y`` at the end of
    a restart cycle.
    """
    _check_same_partition(v, out)
    coeffs = np.asarray(coeffs, dtype=np.float64)
    if coeffs.shape != (v.n_cols, out.n_cols):
        raise ShapeError(
            f"coeffs has shape {coeffs.shape}, expected ({v.n_cols}, {out.n_cols})")
    _engine.resolve(engine, v.comm).matvec_small(v, coeffs, out)
