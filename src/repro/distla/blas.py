"""Costed block-BLAS over :class:`DistMultiVector`.

Each function (i) runs the real per-rank NumPy kernels, (ii) combines
partial results through the communicator with MPI-faithful tree order, and
(iii) charges modeled time: local kernels cost ``max`` across concurrent
ranks; reductions cost one (possibly fused) allreduce.

Kernel attribution matches the paper's breakdown figures: Gram/projection
GEMMs are charged to ``dot`` (paper: "dot-products"), tall ``V -= Q R``
GEMMs to ``update`` ("vector-updates"), triangular scaling to ``trsm``.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg

from repro.dd.core import dd_add
from repro.dd.linalg import matmul_dd
from repro.distla.multivector import DistMultiVector
from repro.exceptions import ShapeError


def _check_same_partition(*mvs: DistMultiVector) -> None:
    first = mvs[0]
    for mv in mvs[1:]:
        if mv.partition != first.partition:
            raise ShapeError("operands live on different partitions")
        if mv.comm is not first.comm:
            raise ShapeError("operands bound to different communicators")


# ---------------------------------------------------------------------------
# reductions
# ---------------------------------------------------------------------------

def block_dot(x: DistMultiVector, y: DistMultiVector) -> np.ndarray:
    """Global ``X.T @ Y`` — one GEMM per rank + one allreduce.

    Returns the ``(kx, ky)`` result, replicated (conceptually) on every
    rank, as in the paper Sec. VII: "the resulting matrix ... is stored
    redundantly on all the MPI processes".
    """
    _check_same_partition(x, y)
    comm = x.comm
    partials = [xs.T @ ys for xs, ys in zip(x.shards, y.shards)]
    costs = [comm.cost.gemm(xs.shape[0], x.n_cols, y.n_cols) for xs in x.shards]
    comm.charge_local("dot", costs)
    return comm.allreduce_sum(partials)


def block_dot_multi(pairs: list[tuple[DistMultiVector, DistMultiVector]]
                    ) -> list[np.ndarray]:
    """Several ``X.T @ Y`` products fused into a *single* allreduce.

    This is the communication pattern that makes BCGS-PIP a "single-reduce"
    algorithm: ``[Q, V].T @ V`` requires the products ``Q.T @ V`` and
    ``V.T @ V`` which travel in one message.
    """
    if not pairs:
        return []
    comm = pairs[0][0].comm
    groups = []
    for x, y in pairs:
        _check_same_partition(x, y)
        if x.comm is not comm:
            raise ShapeError("fused dots must share a communicator")
        groups.append([xs.T @ ys for xs, ys in zip(x.shards, y.shards)])
        costs = [comm.cost.gemm(xs.shape[0], x.n_cols, y.n_cols)
                 for xs in x.shards]
        comm.charge_local("dot", costs)
    return comm.fused_allreduce_sum(groups)


def dot_dd_dist(x: DistMultiVector, y: DistMultiVector
                ) -> tuple[np.ndarray, np.ndarray]:
    """Double-double accurate ``X.T @ Y`` with a fused dd allreduce.

    Per-rank partial Gram matrices are accumulated in dd
    (:func:`repro.dd.linalg.matmul_dd`), the (hi, lo) pairs travel in one
    collective of twice the payload, and ranks combine them with dd
    addition.  Local flops are charged at the dd penalty factor; the
    communication grows only 2x — the defining trade-off of the
    mixed-precision CholQR [26].
    """
    _check_same_partition(x, y)
    comm = x.comm
    his, los = [], []
    for xs, ys in zip(x.shards, y.shards):
        hi, lo = matmul_dd(xs, ys)
        his.append(hi)
        los.append(lo)
    dd_pen = comm.cost.dd_factor()
    costs = []
    for xs in x.shards:
        base = comm.cost.gemm(xs.shape[0], x.n_cols, y.n_cols)
        flops_term = (2.0 * xs.shape[0] * x.n_cols * y.n_cols * dd_pen
                      / comm.machine.peak_flops)
        costs.append(max(base, comm.machine.kernel_latency + flops_term))
    comm.charge_local("dot", costs)
    # One collective, double payload; combining in dd keeps full accuracy.
    items = list(zip(his, los))
    while len(items) > 1:
        half = len(items) // 2
        merged = [dd_add(items[i], items[i + half]) for i in range(half)]
        if len(items) % 2:
            merged.append(items[-1])
        items = merged
    acc = items[0]
    payload = float(acc[0].nbytes + acc[1].nbytes)
    comm.tracer.add("allreduce", comm.cost.allreduce(payload, comm.size))
    return acc


def column_norms(x: DistMultiVector) -> np.ndarray:
    """2-norms of each column (one fused allreduce)."""
    comm = x.comm
    partials = [np.einsum("ij,ij->j", s, s) for s in x.shards]
    costs = [comm.cost.blas1(s.size, n_streams=1, writes=0) for s in x.shards]
    comm.charge_local("norm", costs)
    sq = comm.allreduce_sum(partials)
    return np.sqrt(sq)


# ---------------------------------------------------------------------------
# local (communication-free) updates
# ---------------------------------------------------------------------------

def block_update(v: DistMultiVector, q: DistMultiVector,
                 r: np.ndarray) -> None:
    """In-place tall update ``V -= Q @ R`` (no communication).

    ``r`` is the replicated small matrix from a previous reduction.
    """
    _check_same_partition(v, q)
    r = np.asarray(r, dtype=np.float64)
    if r.shape != (q.n_cols, v.n_cols):
        raise ShapeError(
            f"R has shape {r.shape}, expected ({q.n_cols}, {v.n_cols})")
    comm = v.comm
    for vs, qs in zip(v.shards, q.shards):
        vs -= qs @ r
    costs = [comm.cost.gemm_tall_update(vs.shape[0], q.n_cols, v.n_cols)
             for vs in v.shards]
    comm.charge_local("update", costs)


def trsm_inplace(v: DistMultiVector, r: np.ndarray) -> None:
    """In-place ``V <- V @ R^{-1}`` with upper-triangular replicated ``R``."""
    r = np.asarray(r, dtype=np.float64)
    k = v.n_cols
    if r.shape != (k, k):
        raise ShapeError(f"R has shape {r.shape}, expected ({k}, {k})")
    comm = v.comm
    for vs in v.shards:
        if vs.shape[0]:
            # Solve R.T x.T = v.T  <=>  x = v R^{-1}; use the transposed
            # triangular solve to stay in C-contiguous layout.
            vs[...] = scipy.linalg.solve_triangular(
                r, vs.T, trans="T", lower=False).T
    costs = [comm.cost.trsm(vs.shape[0], k) for vs in v.shards]
    comm.charge_local("trsm", costs)


def scale_columns(v: DistMultiVector, scales: np.ndarray) -> None:
    """In-place per-column scaling ``V[:, j] *= scales[j]``."""
    scales = np.asarray(scales, dtype=np.float64)
    if scales.shape != (v.n_cols,):
        raise ShapeError(f"scales has shape {scales.shape}, expected ({v.n_cols},)")
    comm = v.comm
    for vs in v.shards:
        vs *= scales[np.newaxis, :]
    costs = [comm.cost.blas1(vs.size, n_streams=1, writes=1) for vs in v.shards]
    comm.charge_local("scale", costs)


def lincomb(out: DistMultiVector, terms: list[tuple[float, DistMultiVector]]) -> None:
    """``out <- sum_i alpha_i X_i`` (streaming axpy chain, no comm)."""
    if not terms:
        out.fill(0.0)
        return
    _check_same_partition(out, *[t[1] for t in terms])
    comm = out.comm
    for r, outs in enumerate(out.shards):
        acc = terms[0][0] * terms[0][1].shards[r]
        for alpha, x in terms[1:]:
            acc += alpha * x.shards[r]
        outs[...] = acc
    costs = [comm.cost.blas1(s.size, n_streams=len(terms), writes=1)
             for s in out.shards]
    comm.charge_local("axpy", costs)


def copy_into(dst: DistMultiVector, src: DistMultiVector) -> None:
    """Costed device copy ``dst <- src`` (one read + one write stream)."""
    _check_same_partition(dst, src)
    comm = dst.comm
    dst.assign_from(src)
    costs = [comm.cost.blas1(s.size, n_streams=1, writes=1)
             for s in src.shards]
    comm.charge_local("axpy", costs)


def matvec_small(v: DistMultiVector, coeffs: np.ndarray,
                 out: DistMultiVector) -> None:
    """``out <- V @ coeffs`` where coeffs is a replicated small matrix.

    Used for forming the approximate solution ``x += V_m y`` at the end of
    a restart cycle.
    """
    _check_same_partition(v, out)
    coeffs = np.asarray(coeffs, dtype=np.float64)
    if coeffs.shape != (v.n_cols, out.n_cols):
        raise ShapeError(
            f"coeffs has shape {coeffs.shape}, expected ({v.n_cols}, {out.n_cols})")
    comm = v.comm
    for vs, outs in zip(v.shards, out.shards):
        outs[...] = vs @ coeffs
    costs = [comm.cost.gemm(vs.shape[0], v.n_cols, out.n_cols)
             for vs in v.shards]
    comm.charge_local("update", costs)
