"""Distributed (simulated) dense and sparse linear algebra.

Containers: :class:`DistMultiVector` (1-D block-row distributed n x k
blocks of vectors) and :class:`DistSparseMatrix` (block-row CSR with a
precomputed halo-exchange plan).  All numerically-relevant operations are
routed through :mod:`repro.distla.blas` / :mod:`repro.distla.spmv`, which
perform the per-rank computation and charge modeled time.  How the
per-rank work executes is pluggable (:mod:`repro.distla.engine`): the
``"loop"`` reference engine or the ``"batched"`` engine running stacked
shards as single batched kernels, selected via :func:`repro.config.set_engine`.
"""

from repro.distla.halo import GhostPlan, HaloPlan
from repro.distla.multivector import DistMultiVector
from repro.distla.spmatrix import DistSparseMatrix
from repro.distla.engine import BatchedEngine, KernelEngine, LoopEngine
from repro.distla.blas import (
    block_dot,
    block_dot_multi,
    block_update,
    column_norms,
    dot_dd_dist,
    lincomb,
    trsm_inplace,
)

__all__ = [
    "DistMultiVector",
    "DistSparseMatrix",
    "GhostPlan",
    "HaloPlan",
    "KernelEngine",
    "LoopEngine",
    "BatchedEngine",
    "block_dot",
    "block_dot_multi",
    "block_update",
    "column_norms",
    "dot_dd_dist",
    "lincomb",
    "trsm_inplace",
]
