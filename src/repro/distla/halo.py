"""First-class halo subsystem: single- and multi-level ghost-zone plans.

Two planners over the same sparsity-pattern analysis:

* :class:`HaloPlan` — the depth-1 plan every standard SpMV uses: which
  off-rank operand entries each rank's rows reference, grouped by owning
  peer.  One neighbourhood exchange per SpMV (paper Sec. III, Trilinos'
  standard matrix powers kernel).
* :class:`GhostPlan` — the s-level dependency closure behind the
  communication-avoiding MPK (Chronopoulos & Kim; Demmel et al. "PA1"):
  every rank receives, in ONE aggregated exchange, the ghost rows it
  needs to execute ``s`` SpMVs *locally*, redundantly recomputing ghost
  values whose ghost region shrinks by one level per step.

The closure is taken over the *composed* operator ``A M^{-1}``: a
pointwise preconditioner (identity/Jacobi) adds no coupling, while a
block preconditioner (block Jacobi) couples every row of a rank's block,
so each level's dependency set is rounded up to whole owner blocks
(``expand="block"``).  General preconditioners have no finite ghost
closure and are rejected upstream by the kernel.

Payloads are charged at the operand's *storage* word size (a ghost row
of an fp32 basis moves 4 bytes), so plans store per-peer row counts and
convert to bytes at exchange time.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.exceptions import ConfigurationError
from repro.parallel.partition import Partition
from repro.precision.dtypes import word_bytes as _word_bytes

#: Closure expansion rules: how one application of ``A M^{-1}`` grows a
#: row dependency set.  ``"pointwise"`` follows the sparsity pattern
#: only; ``"block"`` additionally rounds each level up to whole owner
#: blocks (block-Jacobi couples every row of a rank's block).
EXPAND_MODES = ("pointwise", "block")

_DOUBLE = _word_bytes("fp64")


def _row_union(a: sp.csr_matrix, rows: np.ndarray, n: int) -> np.ndarray:
    """``rows ∪ cols(A[rows, :])`` as a sorted global index array."""
    mask = np.zeros(n, dtype=bool)
    mask[rows] = True
    mask[a[rows, :].indices] = True
    return np.flatnonzero(mask)


def _block_round(rows: np.ndarray, partition: Partition) -> np.ndarray:
    """Round a row set up to whole owner blocks (sorted global indices)."""
    if rows.size == 0:
        return rows
    owners = np.unique(partition.owners(rows))
    parts = [np.arange(partition.offsets[p], partition.offsets[p + 1])
             for p in owners]
    return np.concatenate(parts) if parts else rows


class HaloPlan:
    """Per-rank description of the off-rank vector entries SpMV gathers.

    Stores per-peer *row counts*; :meth:`recv_bytes` scales them by the
    operand word size (fp64 by default — bit-identical to the historical
    fixed-8-byte charge).
    """

    __slots__ = ("recv_counts_by_peer", "halo_counts")

    def __init__(self, recv_counts_by_peer: list[dict[int, int]],
                 halo_counts: np.ndarray) -> None:
        self.recv_counts_by_peer = recv_counts_by_peer
        self.halo_counts = halo_counts

    @property
    def recv_bytes_by_peer(self) -> list[dict[int, float]]:
        """fp64-sized payload descriptors (legacy accessor)."""
        return self.recv_bytes(_DOUBLE)

    def recv_bytes(self, word_bytes: float = _DOUBLE,
                   n_vectors: int = 1) -> list[dict[int, float]]:
        """Per-rank ``{peer: bytes}`` for exchanging ``n_vectors`` operands
        stored at ``word_bytes`` per element."""
        scale = float(word_bytes) * n_vectors
        return [{peer: cnt * scale for peer, cnt in by_peer.items()}
                for by_peer in self.recv_counts_by_peer]

    @classmethod
    def analyze(cls, local_blocks: list[sp.csr_matrix],
                partition: Partition) -> "HaloPlan":
        recv: list[dict[int, int]] = []
        counts = np.zeros(partition.ranks, dtype=np.int64)
        for rank, block in enumerate(local_blocks):
            lo, hi = partition.offsets[rank], partition.offsets[rank + 1]
            cols = np.unique(block.indices)
            external = cols[(cols < lo) | (cols >= hi)]
            counts[rank] = external.size
            by_peer = {peer: int(rows.size) for peer, rows
                       in partition.group_by_owner(external).items()}
            recv.append(by_peer)
        return cls(recv, counts)


class GhostPlan:
    """s-level ghost-zone closure for the communication-avoiding MPK.

    For each rank ``r`` the plan holds the level sets ``L_0 ⊆ L_1 ⊆ ...
    ⊆ L_depth`` where ``L_0`` is the owned row block and ``L_{l}`` is the
    set of rows whose values must be held to execute ``l`` more local
    operator applications (one :func:`expand <EXPAND_MODES>` application
    per level).  The CA kernel gathers ghost values on ``L_depth`` once,
    then step ``j`` computes the next vector on ``L_{depth-j}`` — purely
    local, redundantly recomputing the shrinking ghost region.

    Ghosted local blocks: ``level_blocks[rank][l]`` is the CSR row
    submatrix ``A[L_l, :]`` — what rank ``rank`` multiplies at the step
    landing on level ``l`` (only levels ``0..depth-1`` are ever
    computed; ``L_depth`` is the exchanged input).  Column indices stay
    global: the kernel keeps per-rank work arrays in global index space,
    which is the simulation-side equivalent of a local ghost numbering.
    """

    __slots__ = ("partition", "depth", "expand", "levels", "ghost_rows",
                 "recv_counts_by_peer", "level_blocks",
                 "level_rows", "level_nnz", "level_ranks", "n_global",
                 "_eager_counts", "_ring_counts")

    def __init__(self, partition: Partition, depth: int, expand: str,
                 levels: list[list[np.ndarray]],
                 level_blocks: list[list[sp.csr_matrix]],
                 level_nnz: np.ndarray) -> None:
        self.partition = partition
        self.depth = depth
        self.expand = expand
        self.n_global = partition.n_global
        #: ``levels[rank][l]`` — sorted global rows of ``L_l`` on ``rank``.
        self.levels = levels
        #: ``level_blocks[rank][l]`` — ghosted local block ``A[L_l, :]``.
        self.level_blocks = level_blocks
        #: ``ghost_rows[rank]`` — ``L_depth`` minus the owned block.
        self.ghost_rows = []
        #: ``recv_counts_by_peer[rank]`` — ghost row counts by owner.
        self.recv_counts_by_peer = []
        #: ``level_rows[rank, l]`` / ``level_nnz[rank, l]`` — size and CSR
        #: nonzeros of ``A[L_l, :]`` per rank (redundant-work costing).
        self.level_rows = np.array(
            [[lvl.size for lvl in per_rank] for per_rank in levels],
            dtype=np.int64)
        self.level_nnz = level_nnz
        #: ``level_ranks[rank][l]`` — owner ranks intersecting ``L_l``
        #: (block-preconditioner redundant applies touch these blocks).
        self.level_ranks = [
            [np.unique(partition.owners(lvl)) if lvl.size else
             np.zeros(0, dtype=np.int64) for lvl in per_rank]
            for per_rank in levels]
        for rank in range(partition.ranks):
            lo, hi = partition.offsets[rank], partition.offsets[rank + 1]
            top = levels[rank][depth]
            ghosts = top[(top < lo) | (top >= hi)]
            self.ghost_rows.append(ghosts)
            self.recv_counts_by_peer.append(
                {peer: int(rows.size) for peer, rows
                 in partition.group_by_owner(ghosts).items()})
        self._eager_counts = None
        self._ring_counts = None

    # ------------------------------------------------------------------
    @classmethod
    def analyze(cls, a: sp.csr_matrix, partition: Partition, depth: int,
                expand: str = "pointwise") -> "GhostPlan":
        """Build the closure for ``depth`` operator applications."""
        if depth < 0:
            raise ConfigurationError(f"ghost depth must be >= 0, got {depth}")
        if expand not in EXPAND_MODES:
            raise ConfigurationError(
                f"unknown expand mode {expand!r}; expected one of "
                f"{EXPAND_MODES}")
        a = sp.csr_matrix(a)
        n = partition.n_global
        if a.shape != (n, n):
            raise ConfigurationError(
                f"matrix shape {a.shape} does not match partition "
                f"n_global={n}")
        row_nnz = np.diff(a.indptr)
        levels: list[list[np.ndarray]] = []
        level_blocks: list[list[sp.csr_matrix]] = []
        for rank in range(partition.ranks):
            owned = np.arange(partition.offsets[rank],
                              partition.offsets[rank + 1])
            per_rank = [owned]
            for _ in range(depth):
                grown = _row_union(a, per_rank[-1], n)
                if expand == "block":
                    grown = _block_round(grown, partition)
                per_rank.append(grown)
            levels.append(per_rank)
            level_blocks.append([a[per_rank[lvl], :].tocsr()
                                 for lvl in range(depth)])
        level_nnz = np.array(
            [[int(row_nnz[lvl].sum()) for lvl in per_rank]
             for per_rank in levels], dtype=np.int64)
        return cls(partition, depth, expand, levels, level_blocks, level_nnz)

    # ------------------------------------------------------------------
    def recv_bytes(self, word_bytes: float = _DOUBLE,
                   n_vectors: int = 1) -> list[dict[int, float]]:
        """Per-rank ``{peer: bytes}`` of the ONE aggregated deep-halo
        exchange moving ``n_vectors`` operands at ``word_bytes``/element."""
        scale = float(word_bytes) * n_vectors
        return [{peer: cnt * scale for peer, cnt in by_peer.items()}
                for by_peer in self.recv_counts_by_peer]

    def _split_counts(self) -> tuple[list[dict[int, int]],
                                     list[dict[int, int]]]:
        """(eager, ring) per-rank ghost row counts — the PA2 split.

        ``eager`` is the depth-1 nearest-neighbour shell of the closure
        (``L_1`` minus the owned block); ``ring`` is everything deeper
        (``L_depth`` ghosts minus the eager shell).  Together they
        partition :attr:`ghost_rows` exactly, so eager + ring payloads
        sum to :meth:`recv_bytes` peer for peer.
        """
        if self._eager_counts is None:
            eager, ring = [], []
            for rank in range(self.partition.ranks):
                lo = self.partition.offsets[rank]
                hi = self.partition.offsets[rank + 1]
                near_lvl = self.levels[rank][min(1, self.depth)]
                near = near_lvl[(near_lvl < lo) | (near_lvl >= hi)]
                far = np.setdiff1d(self.ghost_rows[rank], near,
                                   assume_unique=True)
                eager.append({peer: int(rows.size) for peer, rows
                              in self.partition.group_by_owner(near).items()})
                ring.append({peer: int(rows.size) for peer, rows
                             in self.partition.group_by_owner(far).items()})
            self._eager_counts, self._ring_counts = eager, ring
        return self._eager_counts, self._ring_counts

    def eager_recv_bytes(self, word_bytes: float = _DOUBLE,
                         n_vectors: int = 1) -> list[dict[int, float]]:
        """Payload of the depth-1 ghost shell — what the PA2 overlapped
        kernel exchanges eagerly (blocking) before posting the ring."""
        scale = float(word_bytes) * n_vectors
        return [{peer: cnt * scale for peer, cnt in by_peer.items()}
                for by_peer in self._split_counts()[0]]

    def ring_recv_bytes(self, word_bytes: float = _DOUBLE,
                        n_vectors: int = 1) -> list[dict[int, float]]:
        """Payload of the deep-ring remainder (levels 2..depth) — what
        PA2 posts nonblocking and hides behind the first local SpMVs."""
        scale = float(word_bytes) * n_vectors
        return [{peer: cnt * scale for peer, cnt in by_peer.items()}
                for by_peer in self._split_counts()[1]]

    def ghost_counts(self) -> np.ndarray:
        """Ghost rows per rank at the deepest level (diagnostics)."""
        return np.array([g.size for g in self.ghost_rows], dtype=np.int64)

    def redundant_rows(self, level: int) -> np.ndarray:
        """Per-rank rows computed *beyond* the owned block at ``level``."""
        return self.level_rows[:, level] - self.partition.counts

    def __repr__(self) -> str:
        return (f"GhostPlan(depth={self.depth}, expand={self.expand!r}, "
                f"ranks={self.partition.ranks}, "
                f"max_ghosts={int(self.ghost_counts().max(initial=0))})")
