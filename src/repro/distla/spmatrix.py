"""Block-row distributed sparse matrices with precomputed halo plans.

A :class:`DistSparseMatrix` slices a global CSR matrix into per-rank row
blocks and analyzes, once, which off-rank entries of the input vector each
rank's rows reference (the *halo*).  ``matvec`` then charges one
neighbourhood exchange (paper Sec. III: "applying each SpMV with
neighborhood communication ... in sequence" — Trilinos' standard, non-CA
matrix powers kernel) plus per-rank local SpMV kernels.

The multi-level ghost-zone closures behind the *communication-avoiding*
MPK live in :mod:`repro.distla.halo`; :meth:`DistSparseMatrix.ghost_plan`
analyzes and caches one :class:`~repro.distla.halo.GhostPlan` per
``(depth, expand)`` so repeated s-step panels reuse the setup.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.distla.halo import GhostPlan, HaloPlan
from repro.distla.multivector import DistMultiVector
from repro.exceptions import ShapeError
from repro.parallel.communicator import SimComm
from repro.parallel.partition import Partition


class DistSparseMatrix:
    """Square sparse matrix in 1-D block-row distribution.

    Parameters
    ----------
    global_matrix:
        Any scipy sparse matrix (converted to CSR); must be square.
    partition / comm:
        Row distribution and the simulated communicator.
    """

    def __init__(self, global_matrix: sp.spmatrix, partition: Partition,
                 comm: SimComm) -> None:
        a = sp.csr_matrix(global_matrix)
        if a.shape[0] != a.shape[1]:
            raise ShapeError(f"matrix must be square, got {a.shape}")
        if a.shape[0] != partition.n_global:
            raise ShapeError(
                f"matrix has {a.shape[0]} rows, partition expects "
                f"{partition.n_global}")
        self.partition = partition
        self.comm = comm
        self.n_global = partition.n_global
        self.local_blocks = [
            a[partition.local_slice(r), :].tocsr()
            for r in range(partition.ranks)
        ]
        self.halo = HaloPlan.analyze(self.local_blocks, partition)
        self.nnz = int(a.nnz)
        self._diag = a.diagonal().copy()
        self._global_csr = a
        self._ghost_plans: dict[tuple[int, str], GhostPlan] = {}

    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        return (self.n_global, self.n_global)

    def diagonal(self) -> np.ndarray:
        """Copy of the global diagonal (used by Jacobi preconditioners)."""
        return self._diag.copy()

    def local_nnz(self, rank: int) -> int:
        return int(self.local_blocks[rank].nnz)

    def ghost_plan(self, depth: int, expand: str = "pointwise") -> GhostPlan:
        """Cached s-level ghost-zone closure (see :mod:`repro.distla.halo`).

        ``depth`` is the number of local operator applications the plan
        must cover; ``expand`` the per-level dependency rule of the
        composed operator (``"pointwise"`` for identity/Jacobi
        preconditioning, ``"block"`` for block Jacobi).
        """
        key = (int(depth), expand)
        plan = self._ghost_plans.get(key)
        if plan is None:
            plan = GhostPlan.analyze(self._global_csr, self.partition,
                                     depth, expand=expand)
            self._ghost_plans[key] = plan
            # closure analysis is real setup work — charge it on the
            # cache miss so short solves don't get deep-halo planning
            # for free (reuse across panels/solves stays free)
            with self.comm.tracer.phase("spmv"):
                self.comm.charge_local("ghost_plan", [
                    self.comm.cost.ghost_plan_analysis(
                        float(plan.level_rows[r].sum()),
                        float(plan.level_nnz[r].sum()))
                    for r in range(self.partition.ranks)
                ])
        return plan

    # ------------------------------------------------------------------
    def matvec(self, x: DistMultiVector, out: DistMultiVector | None = None,
               kernel_phase_halo: bool = True) -> DistMultiVector:
        """Distributed ``y = A @ x`` for a 1-column multivector.

        Numerically identical to a real distributed SpMV: each local block
        multiplies the globally-assembled operand (which a real run would
        have gathered via the halo exchange we charge for).
        """
        if x.partition != self.partition:
            raise ShapeError("operand partition differs from matrix partition")
        if x.n_cols != 1:
            raise ShapeError(f"matvec expects 1 column, got {x.n_cols}")
        comm = self.comm
        if out is None:
            out = DistMultiVector.zeros(self.partition, comm, 1)
        elif out.n_cols != 1 or out.partition != self.partition:
            raise ShapeError("out vector is not conformal")
        # a backend with real ranks may execute the SpMV itself (each
        # worker gathers the operand and computes its own block row);
        # the simulator returns False and the driver computes below —
        # modeled charges are identical either way
        executed = comm.exec_spmv(self, x, out)
        if kernel_phase_halo:
            # ghost rows travel at the operand's storage word size
            comm.charge_halo(self.halo.recv_bytes(x.word_bytes))
        x_global = None if executed else x.to_global()[:, 0]
        costs = []
        quantized = out.storage != "fp64"
        for rank, block in enumerate(self.local_blocks):
            if not executed:
                # scipy upcasts low-precision operands to float64 for the
                # local SpMV; results round back to ``out``'s storage grid.
                y_local = block @ x_global
                out.shards[rank][:, 0] = (out.quantize(y_local) if quantized
                                          else y_local)
            touched = (self.partition.local_count(rank)
                       + int(self.halo.halo_counts[rank]))
            costs.append(comm.cost.spmv(block.nnz, block.shape[0], touched,
                                        word_bytes=max(x.word_bytes,
                                                       out.word_bytes)))
        comm.charge_local("spmv_local", costs)
        return out

    def matvec_batched(self, xs: list[DistMultiVector],
                       outs: list[DistMultiVector | None] | None = None
                       ) -> list[DistMultiVector]:
        """Several :meth:`matvec` applications as ONE charged pass.

        Values are identical to per-operand calls; the modeled charges
        fuse under :class:`repro.parallel.batch.BatchCharges` — one halo
        exchange whose payload carries every operand's ghost rows, one
        local-SpMV launch over the stacked operands.  The batched
        multi-RHS solver's panel generation is exactly this pattern.
        """
        if outs is None:
            outs = [None] * len(xs)
        if len(outs) != len(xs):
            raise ShapeError(
                f"{len(xs)} operands but {len(outs)} output vectors")
        from repro.parallel.batch import BatchCharges
        results: list[DistMultiVector] = []
        with BatchCharges(self.comm) as batch:
            with batch.group():
                for x, out in zip(xs, outs):
                    with batch.member():
                        results.append(self.matvec(x, out=out))
        return results

    def to_scipy(self) -> sp.csr_matrix:
        """Reassemble the global CSR matrix (testing/diagnostics)."""
        return sp.vstack(self.local_blocks, format="csr")

    def __repr__(self) -> str:
        return (f"DistSparseMatrix(n={self.n_global}, nnz={self.nnz}, "
                f"ranks={self.partition.ranks})")
