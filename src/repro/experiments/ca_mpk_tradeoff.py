"""CA-MPK vs standard MPK: the latency/bandwidth/redundancy trade-off.

The paper deliberately follows Trilinos in using the *standard* matrix
powers kernel — one halo exchange + local SpMV per basis column — because
the communication-avoiding alternative composes badly with general
preconditioners (Section III).  This experiment measures what that choice
costs: the ghost-zone CA-MPK (:class:`~repro.krylov.mpk
.MatrixPowersKernel` with ``mode="ca"``, after the classic s-step
formulation of Chronopoulos & Kim) pays ONE aggregated deep-halo
exchange per s-panel plus redundant flops on a shrinking ghost region,
where the standard kernel pays ``s`` latency-bound neighbourhood
synchronizations.

Sweep: basis generation for one restart cycle on a 2-D Laplacian, across
machine regimes from bandwidth-dominated to latency-dominated — the
stock presets (generic_cpu / vortex / summit) plus Summit variants with
the inter-node latency and device-sync cost scaled up (the regime of
fat-tree congestion / many-rank collectives where s-step methods are
aimed).  Both kernels produce bit-identical bases (asserted), so the
only difference is the communication profile; the table reports modeled
basis-generation seconds, halo-exchange counts, the redundant-flop
fraction, and the CA speedup.

Expected shape: CA loses (or ties) when bandwidth/compute dominates —
the redundant ghost work buys nothing — and wins increasingly as
per-message latency grows; with a block-Jacobi preconditioner the
block-rounded ghost closure inflates redundant work and pushes the
crossover further out, which is exactly the composition problem the
paper cites.  The smoke-size variant is asserted in
``tests/experiments/test_ca_mpk_tradeoff.py``.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentTable, fmt
from repro.krylov.basis import MonomialBasis
from repro.krylov.mpk import MatrixPowersKernel, PreconditionedOperator
from repro.krylov.simulation import Simulation
from repro.krylov.sstep_gmres import _panel_bounds
from repro.matrices.stencil import laplace2d
from repro.parallel.machine import MachineSpec, generic_cpu, summit, vortex
from repro.precond.block_jacobi import BlockJacobiPreconditioner
from repro.precond.jacobi import JacobiPreconditioner

#: (label, machine factory) — ordered bandwidth-dominated to
#: latency-dominated.  The scaled variants model congested fat-tree /
#: large-collective regimes: per-hop inter-node latency and the device
#: synchronization both grow, per-link bandwidth stays fixed.
def _summit_lat(scale: float) -> MachineSpec:
    m = summit()
    return m.with_overrides(
        name=f"summit_lat{scale:g}x",
        net_latency_inter=m.net_latency_inter * scale,
        device_sync_latency=m.device_sync_latency * scale)


REGIMES = (
    ("generic_cpu", generic_cpu),
    ("vortex", vortex),
    ("summit", summit),
    ("summit_lat4x", lambda: _summit_lat(4.0)),
    ("summit_lat16x", lambda: _summit_lat(16.0)),
)

PRECONDS = {
    "none": lambda: None,
    "jacobi": JacobiPreconditioner,
    "block_jacobi": BlockJacobiPreconditioner,
}


def generate_basis(machine: MachineSpec, mode: str, *, nx: int, ranks: int,
                   s: int, restart: int, precond_name: str = "none",
                   seed: int = 0) -> dict:
    """One full restart cycle of MPK panels; returns time/count stats."""
    sim = Simulation(laplace2d(nx), ranks=ranks, machine=machine)
    pc = PRECONDS[precond_name]()
    if pc is not None:
        pc.setup(sim.matrix)
    op = PreconditionedOperator(sim.matrix, pc)
    mpk = MatrixPowersKernel(op, MonomialBasis(), mode=mode)
    basis = sim.zeros(restart + 1)
    rng = np.random.default_rng(seed)
    v0 = rng.standard_normal(sim.n)
    v0 /= np.linalg.norm(v0)
    basis.view_cols(0).assign_from(sim.vector_from(v0))
    snap = sim.tracer.snapshot()
    for lo, hi in _panel_bounds(s, restart + 1):
        mpk.extend(basis, max(lo, 1), hi)
    # the machine-readable snapshot is the source of truth; the named
    # scalars below are views into it for the table renderer
    doc = sim.tracer.since(snap).to_dict()
    halo = sum(c for key, c in doc["counts"].items()
               if key.endswith("/halo"))
    halo_seconds = sum(v for key, v in doc["by_kernel"].items()
                       if key.endswith("/halo"))
    stats = {
        "basis": basis.to_global(),
        "totals": doc,
        "seconds": doc["clock"],
        "halo_count": halo,
        "halo_seconds": halo_seconds,
        "spmv_seconds": doc["by_phase"].get("spmv", 0.0),
        "precond_seconds": doc["by_phase"].get("precond", 0.0),
    }
    if mode == "ca":
        plan = sim.matrix.ghost_plan(
            s, op.ghost_expand if pc is not None else "pointwise")
        owned = plan.partition.counts.astype(np.float64)
        redundant = plan.level_rows[:, :-1].sum(axis=1) - owned * s
        stats["redundant_frac"] = float(redundant.max()
                                        / max(owned.max() * s, 1.0))
    return stats


def run(nx: int = 48, ranks: int = 24, s: int = 5, restart: int = 30,
        precond_name: str = "none", regimes=REGIMES) -> ExperimentTable:
    """Sweep the machine regimes; one table row per regime."""
    table = ExperimentTable(
        "ca_mpk_tradeoff",
        f"standard vs communication-avoiding MPK, one restart cycle "
        f"(laplace2d({nx}), p={ranks}, s={s}, m={restart}, "
        f"precond={precond_name})",
        headers=["machine", "std s", "ca s", "ca speedup",
                 "halo std", "halo ca", "std halo s", "ca halo s",
                 "redundant"])
    for label, factory in regimes:
        std = generate_basis(factory(), "standard", nx=nx, ranks=ranks, s=s,
                             restart=restart, precond_name=precond_name)
        ca = generate_basis(factory(), "ca", nx=nx, ranks=ranks, s=s,
                            restart=restart, precond_name=precond_name)
        if not np.array_equal(std["basis"], ca["basis"]):
            raise AssertionError(
                f"CA basis diverged from standard on {label}")
        table.add_row(
            label, fmt(std["seconds"]), fmt(ca["seconds"]),
            f"{std['seconds'] / ca['seconds']:.2f}x",
            std["halo_count"], ca["halo_count"],
            fmt(std["halo_seconds"]), fmt(ca["halo_seconds"]),
            f"{ca.get('redundant_frac', 0.0):.1%}")
    table.add_note("both kernels generate bit-identical bases (asserted "
                   "per row); the table isolates the communication/"
                   "redundancy trade-off")
    table.add_note("halo std/ca = neighbourhood exchanges per cycle: s per "
                   "panel (standard) vs 1 per panel (CA)")
    table.add_note("redundant = worst-rank ghost-ring rows recomputed, as "
                   "a fraction of owned-row work across the cycle")
    table.add_note("summit_latNx = Summit with inter-node hop latency and "
                   "device-sync cost scaled N times (congested-network / "
                   "large-collective regime)")
    return table


def main(argv: list | None = None) -> None:
    import argparse
    p = argparse.ArgumentParser(description=__doc__)
    p.add_argument("--nx", type=int, default=48)
    p.add_argument("--ranks", type=int, default=24)
    p.add_argument("--s", type=int, default=5)
    p.add_argument("--restart", type=int, default=30)
    p.add_argument("--precond", choices=sorted(PRECONDS), default="none")
    p.add_argument("--quick", action="store_true")
    args = p.parse_args(argv)
    nx = 24 if args.quick else args.nx
    ranks = 8 if args.quick else args.ranks
    print(run(nx=nx, ranks=ranks, s=args.s, restart=args.restart,
              precond_name=args.precond).render())
    if not args.quick:
        for pc in ("jacobi", "block_jacobi"):
            print()
            print(run(nx=nx, ranks=ranks, s=args.s, restart=args.restart,
                      precond_name=pc).render())


if __name__ == "__main__":
    main()
