"""Ablation studies for the design choices DESIGN.md calls out (A1-A5).

A1  sync-vs-reuse: how much of the two-stage win is fewer reductions
    (latency) vs. wider local GEMMs (data reuse)?  Answered by re-running
    the cost model on a zero-latency machine.
A2  bs grid: Table II's sweep extended to a dense bs grid x node counts.
A3  basis choice: monomial vs Newton vs Chebyshev panel conditioning.
A4  step size s: where does one-stage BCGS-PIP2 break down vs two-stage?
A5  intra-block kernel shootout: HHQR / TSQR / CholQR2 / shifted / dd /
    sketched on one ill-conditioned panel (stability + modeled time).
"""

from __future__ import annotations

import numpy as np

from repro.distla.multivector import DistMultiVector
from repro.exceptions import CholeskyBreakdownError, ConfigurationError, NumericalError
from repro.experiments.common import ExperimentTable, fmt, resolve_machine
from repro.experiments.estimator import CycleCostEstimator, ProblemShape
from repro.krylov.basis import ChebyshevBasis, MonomialBasis, NewtonBasis
from repro.krylov.mpk import MatrixPowersKernel, PreconditionedOperator
from repro.krylov.simulation import Simulation
from repro.matrices.stencil import laplace2d
from repro.matrices.synthetic import glued_matrix, logscaled_matrix
from repro.ortho.analysis import condition_number, orthogonality_error
from repro.ortho.backend import DistBackend
from repro.ortho.base import BlockDriver
from repro.ortho.bcgs_pip import BCGSPIP2Scheme
from repro.ortho.cholqr import CholQR2, MixedPrecisionCholQR, ShiftedCholQR
from repro.ortho.hhqr import HouseholderQR
from repro.ortho.sketched import SketchedCholQR
from repro.ortho.tsqr import TSQRFactor
from repro.ortho.two_stage import TwoStageScheme
from repro.parallel.machine import generic_cpu
from repro.parallel.partition import Partition
from repro.parallel.communicator import SimComm
from repro.parallel.tracing import Tracer
from repro.utils.rng import default_rng


# ---------------------------------------------------------------------------
# A1 — latency vs data reuse decomposition of the two-stage win
# ---------------------------------------------------------------------------

def run_sync_vs_reuse(nodes: int = 32, nx: int = 2000, m: int = 60,
                      s: int = 5) -> ExperimentTable:
    mach = resolve_machine("summit")
    zero_lat = mach.with_overrides(net_latency_intra=0.0,
                                   net_latency_inter=0.0,
                                   device_sync_latency=0.0,
                                   kernel_latency=0.0)
    table = ExperimentTable(
        "ablation-A1",
        "Two-stage win split: latency savings vs data-reuse savings "
        f"({nodes} nodes)",
        headers=["machine", "pip2 ortho/cycle", "two-stage ortho/cycle",
                 "speedup"])
    for label, machine in [("summit (full latency)", mach),
                           ("zero-latency variant", zero_lat)]:
        est = CycleCostEstimator(machine, nodes * mach.ranks_per_node,
                                 ProblemShape.stencil2d(nx, 9), m=m, s=s)
        pip2 = est.phase_seconds(est.sstep_cycle("pip2"))["ortho"]
        two = est.phase_seconds(est.sstep_cycle("two_stage", bs=m))["ortho"]
        table.add_row(label, fmt(pip2), fmt(two), f"{pip2 / two:.2f}x")
    table.add_note("residual speedup on the zero-latency machine = pure "
                   "data-reuse (wider GEMM) effect; the rest is avoided "
                   "synchronization")
    return table


# ---------------------------------------------------------------------------
# A2 — dense bs grid across node counts
# ---------------------------------------------------------------------------

def run_bs_grid(node_counts: list | None = None, nx: int = 2000,
                m: int = 60, s: int = 5) -> ExperimentTable:
    node_counts = node_counts or [1, 4, 16, 32]
    bs_values = [b for b in (5, 10, 15, 20, 30, 40, 50, 60) if b % s == 0]
    mach = resolve_machine("summit")
    table = ExperimentTable(
        "ablation-A2", "Ortho seconds/cycle over the (bs, nodes) grid",
        headers=["bs"] + [f"{n} nodes" for n in node_counts])
    rows = {bs: [bs] for bs in bs_values}
    for nodes in node_counts:
        est = CycleCostEstimator(mach, nodes * mach.ranks_per_node,
                                 ProblemShape.stencil2d(nx, 9), m=m, s=s)
        for bs in bs_values:
            t = est.phase_seconds(est.sstep_cycle("two_stage", bs=bs))
            rows[bs].append(fmt(t["ortho"]))
    for bs in bs_values:
        table.add_row(*rows[bs])
    table.add_note("paper Table II: monotone improvement with bs, "
                   "best at bs = m")
    return table


# ---------------------------------------------------------------------------
# A3 — basis polynomial vs panel conditioning
# ---------------------------------------------------------------------------

def run_basis_conditioning(nx: int = 40, s_values: list | None = None,
                           seed: int = 3) -> ExperimentTable:
    s_values = s_values or [2, 4, 6, 8, 10, 12]
    sim = Simulation(laplace2d(nx), ranks=2, machine=generic_cpu())
    a = sim.matrix.to_scipy()
    # crude spectral interval for Chebyshev: Gershgorin
    lmax = float(abs(a).sum(axis=1).max())
    bases = {
        "monomial": lambda: MonomialBasis(),
        "newton": lambda: NewtonBasis(
            shifts=np.linspace(0.05 * lmax, 0.95 * lmax, 8)),
        "chebyshev": lambda: ChebyshevBasis(lmax / 100.0, lmax),
    }
    rng = default_rng(seed)
    v0 = rng.standard_normal(sim.n)
    v0 /= np.linalg.norm(v0)
    table = ExperimentTable(
        "ablation-A3",
        f"kappa(V_1) of one s-step panel by basis (2D Laplace {nx}x{nx})",
        headers=["s"] + list(bases))
    for s in s_values:
        row = [s]
        for factory in bases.values():
            basis = sim.zeros(s + 1)
            basis.view_cols(0).assign_from(sim.vector_from(v0))
            mpk = MatrixPowersKernel(PreconditionedOperator(sim.matrix),
                                     factory())
            mpk.extend(basis, 1, s + 1)
            row.append(fmt(condition_number(basis.to_global())))
        table.add_row(*row)
    table.add_note("paper Sec. VI: 'using more stable bases, like Newton "
                   "or Chebyshev bases, could reduce the condition number'")
    return table


# ---------------------------------------------------------------------------
# A4 — step-size stability cliff: one-stage vs two-stage
# ---------------------------------------------------------------------------

def run_step_size_cliff(n: int = 20_000, m: int = 60,
                        panel_cond: float = 1e7, growth: float = 2.0,
                        seed: int = 4) -> ExperimentTable:
    table = ExperimentTable(
        "ablation-A4",
        "Orthogonality error vs step size s (glued matrix, kappa growth "
        f"{growth}/panel)",
        headers=["s", "bcgs-pip2 err", "two-stage(bs=m) err"])
    rng0 = default_rng(seed)
    for s in [2, 5, 10, 15, 30]:
        if m % s:
            continue
        g = glued_matrix(n, s, m // s, panel_cond=panel_cond,
                         growth=growth, rng=default_rng(seed))
        cells = []
        for scheme in (BCGSPIP2Scheme(), TwoStageScheme(big_step=m)):
            try:
                out = BlockDriver(scheme, s).run(g.matrix)
                cells.append(fmt(orthogonality_error(out.q)))
            except CholeskyBreakdownError:
                cells.append("breakdown")
        table.add_row(s, *cells)
    table.add_note("two-stage tolerates the growing prefix conditioning "
                   "because stage 1 keeps the accumulated basis O(1)")
    return table


# ---------------------------------------------------------------------------
# A5 — intra-block kernel shootout
# ---------------------------------------------------------------------------

def run_intra_kernels(n: int = 100_000, k: int = 5,
                      kappas: list | None = None,
                      ranks: int = 24, seed: int = 5) -> ExperimentTable:
    kappas = kappas or [1e4, 1e9, 1e13]
    kernels = [HouseholderQR(), TSQRFactor(), CholQR2(), ShiftedCholQR(),
               MixedPrecisionCholQR(), SketchedCholQR()]
    mach = resolve_machine("summit")
    table = ExperimentTable(
        "ablation-A5",
        f"Intra-block kernels on a {n}x{k} panel ({ranks} ranks, Summit)",
        headers=["kernel"]
                + [f"err@k={fmt(kp)}" for kp in kappas]
                + ["modeled time", "syncs"])
    for kernel in kernels:
        errs = []
        modeled = None
        syncs = None
        for kappa in kappas:
            v = logscaled_matrix(n, k, kappa, default_rng(seed))
            comm = SimComm(mach, ranks, Tracer())
            part = Partition(n, ranks)
            dv = DistMultiVector.from_global(v, part, comm)
            backend = DistBackend(comm)
            try:
                kernel.factor(backend, dv)
                errs.append(fmt(orthogonality_error(dv.to_global())))
            except (CholeskyBreakdownError, NumericalError,
                    ConfigurationError):
                errs.append("breakdown")
            if modeled is None:
                modeled = comm.tracer.clock
                syncs = comm.tracer.sync_count()
        table.add_row(kernel.name, *errs, fmt(modeled), syncs)
    table.add_note("HHQR/TSQR: unconditionally stable but latency-heavy; "
                   "CholQR2 fast but cliffs at eps^-1/2; shifted/dd/sketched "
                   "push the cliff out at modest extra cost")
    return table


# ---------------------------------------------------------------------------
# A6 — step-size strategies: conservative+two-stage vs runtime adaptation
# ---------------------------------------------------------------------------

def run_step_strategies(nx: int = 40, tol: float = 1e-8,
                        maxiter: int = 12_000) -> ExperimentTable:
    """The paper's closing claim, quantified: a conservative s = 5 with
    the two-stage scheme vs an aggressive s recovered by runtime
    adaptation vs the aggressive s left alone."""
    from repro.krylov.adaptive import adaptive_sstep_gmres
    from repro.krylov.sstep_gmres import sstep_gmres

    a = laplace2d(nx)
    table = ExperimentTable(
        "ablation-A6",
        f"Step-size strategies on 2D Laplace {nx}x{nx} (live runs)",
        headers=["strategy", "iters", "converged", "ortho ms", "total ms",
                 "syncs"])
    runs = [
        ("fixed s=15 (untuned, one-stage)",
         lambda sim, b: sstep_gmres(sim, b, s=15, restart=30, tol=tol,
                                    maxiter=maxiter)),
        ("adaptive s (15 -> shrink on breakdown)",
         lambda sim, b: adaptive_sstep_gmres(sim, b, s_max=15, restart=30,
                                             tol=tol, maxiter=maxiter)),
        ("conservative s=5 + two-stage(bs=m)",
         lambda sim, b: sstep_gmres(sim, b, s=5, restart=30, tol=tol,
                                    maxiter=maxiter,
                                    scheme=TwoStageScheme(big_step=30))),
    ]
    for label, solve in runs:
        sim = Simulation(a, ranks=12)
        b = sim.ones_solution_rhs()
        res = solve(sim, b)
        table.add_row(label, res.iterations, "yes" if res.converged else "NO",
                      fmt(res.ortho_time * 1e3), fmt(res.total_time * 1e3),
                      res.sync_count)
    table.add_note("paper Sec. I: the two-stage approach 'alleviates the "
                   "need of fine-tuning the step size' — the conservative "
                   "row matches the adaptive row without any tuning logic")
    return table


def main(argv: list | None = None) -> None:
    import argparse
    p = argparse.ArgumentParser(description=__doc__)
    p.add_argument("which", nargs="?", default="all",
                   choices=["A1", "A2", "A3", "A4", "A5", "A6", "all"])
    p.add_argument("--quick", action="store_true")
    args = p.parse_args(argv)
    runs = {
        "A1": lambda: run_sync_vs_reuse(),
        "A2": lambda: run_bs_grid(),
        "A3": lambda: run_basis_conditioning(nx=20 if args.quick else 40),
        "A4": lambda: run_step_size_cliff(n=5000 if args.quick else 20000),
        "A5": lambda: run_intra_kernels(n=20000 if args.quick else 100000),
        "A6": lambda: run_step_strategies(nx=24 if args.quick else 40),
    }
    which = list(runs) if args.which == "all" else [args.which]
    for key in which:
        print(runs[key]().render())
        print()


if __name__ == "__main__":
    main()
