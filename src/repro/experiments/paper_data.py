"""The paper's reported numbers (for side-by-side comparison).

Transcribed from Yamazaki et al., IPDPS 2024 (arXiv:2402.15033).  The
experiment harness prints these next to our modeled values so
EXPERIMENTS.md can record paper-vs-measured for every artifact; the
iteration counts also feed the paper-scale time projections (modeled
seconds/iteration x paper iterations).
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Table II — 2D Laplace n = 2000^2 on 4 V100 (Vortex), s = 5, m = 60
# columns: iters, SpMV s, Ortho s, Total s
# ---------------------------------------------------------------------------
TABLE2 = {
    "gmres": dict(iters=60251, spmv=100.1, ortho=150.4, total=249.7),
    "bcgs2": dict(iters=60255, spmv=103.6, ortho=128.6, total=232.3),
    "two_stage_bs5": dict(iters=60255, spmv=103.4, ortho=102.8, total=206.4),
    "two_stage_bs20": dict(iters=60260, spmv=103.7, ortho=96.9, total=201.3),
    "two_stage_bs40": dict(iters=60280, spmv=104.3, ortho=75.2, total=180.2),
    "two_stage_bs60": dict(iters=60300, spmv=103.8, ortho=61.1, total=165.7),
}

# ---------------------------------------------------------------------------
# Table III — strong scaling, 9-pt 2D Laplace n = 2000^2, 6 GPUs/node
# per node count: {config: (iters, spmv, ortho, total)}
# ---------------------------------------------------------------------------
TABLE3_ITERS = {"gmres": 60251, "bcgs2": 60255, "pip2": 60255,
                "two_stage": 60300}

TABLE3 = {
    1: {"gmres": (63.5, 100.2, 164.3), "bcgs2": (64.2, 71.9, 134.1),
        "pip2": (66.2, 54.5, 117.8), "two_stage": (66.6, 32.0, 99.2)},
    2: {"gmres": (38.2, 72.9, 108.5), "bcgs2": (35.2, 43.9, 78.9),
        "pip2": (35.0, 30.1, 65.2), "two_stage": (35.7, 18.8, 54.7)},
    4: {"gmres": (27.7, 59.8, 85.6), "bcgs2": (25.3, 30.8, 57.1),
        "pip2": (25.2, 19.9, 45.4), "two_stage": (27.1, 12.6, 40.2)},
    8: {"gmres": (20.0, 51.9, 70.8), "bcgs2": (20.0, 27.2, 47.0),
        "pip2": (20.1, 16.4, 36.3), "two_stage": (19.5, 10.8, 30.6)},
    16: {"gmres": (17.1, 48.0, 64.3), "bcgs2": (16.7, 22.8, 40.2),
         "pip2": (17.1, 14.1, 30.9), "two_stage": (16.8, 9.3, 26.1)},
    32: {"gmres": (16.0, 46.9, 61.9), "bcgs2": (15.6, 22.3, 38.2),
         "pip2": (15.6, 12.6, 28.1), "two_stage": (16.0, 8.7, 24.5)},
}

# ---------------------------------------------------------------------------
# Table IV — time/iteration (ms) on 16 Summit nodes (96 GPUs)
# per matrix: {config: (iters, spmv_ms, ortho_ms, total_ms)}
# ---------------------------------------------------------------------------
TABLE4 = {
    "Laplace3D": {
        "gmres": (454, 0.36, 0.87, 1.15), "bcgs2": (455, 0.38, 0.43, 0.76),
        "pip2": (455, 0.37, 0.24, 0.60), "two_stage": (480, 0.37, 0.16, 0.52)},
    "Elasticity3D": {
        "gmres": (36, 0.37, 0.80, 1.17), "bcgs2": (40, 0.39, 0.45, 0.88),
        "pip2": (40, 0.37, 0.23, 0.65), "two_stage": (60, 0.33, 0.14, 0.51)},
    "atmosmodl": {
        "gmres": (213, 0.31, 0.79, 1.06), "bcgs2": (215, 0.37, 0.38, 0.79),
        "pip2": (215, 0.31, 0.19, 0.50), "two_stage": (240, 0.35, 0.14, 0.47)},
    "dielFilterV2real": {
        "gmres": (491856, 0.36, 0.99, 1.22),
        "bcgs2": (493145, 0.33, 0.36, 0.66),
        "pip2": (491865, 0.30, 0.19, 0.48),
        "two_stage": (491880, 0.31, 0.11, 0.42)},
    "ecology2": {
        "gmres": (3471536, 0.25, 0.80, 1.04),
        "bcgs2": (3471540, 0.24, 0.34, 0.58),
        "pip2": (3471535, 0.24, 0.18, 0.42),
        "two_stage": (3471540, 0.25, 0.10, 0.36)},
    "ML_Geer": {
        "gmres": (1596564, 0.28, 0.74, 1.00),
        "bcgs2": (1664400, 0.29, 0.37, 0.65),
        "pip2": (1613060, 0.28, 0.20, 0.47),
        "two_stage": (1517460, 0.28, 0.11, 0.39)},
    "thermal2": {
        "gmres": (139188, 0.26, 0.81, 1.06),
        "bcgs2": (139190, 0.26, 0.36, 0.61),
        "pip2": (139190, 0.25, 0.20, 0.44),
        "two_stage": (139200, 0.27, 0.13, 0.39)},
}

#: Table IV structural metadata: (paper_n, nnz_per_row, generator kind)
TABLE4_SHAPES = {
    "Laplace3D": (100 ** 3, 6.9, "stencil3d"),
    "Elasticity3D": (3 * 100 ** 3, 5.7, "elasticity"),
    "atmosmodl": (1_489_752, 6.9, "irregular"),
    "dielFilterV2real": (1_157_456, 41.9, "irregular"),
    "ecology2": (999_999, 5.0, "irregular"),
    "ML_Geer": (1_504_002, 73.7, "irregular"),
    "thermal2": (1_228_045, 7.0, "irregular"),
}

#: Headline claims (abstract): two-stage vs original s-step on 192 GPUs.
HEADLINE = dict(
    ortho_speedup_two_stage_vs_bcgs2=2.6,
    total_speedup_two_stage_vs_bcgs2=1.6,
    ortho_speedup_bcgs2_vs_gmres=2.1,
    total_speedup_bcgs2_vs_gmres=1.8,
)
