"""Paper-reproduction experiment harness.

One module per table/figure of the paper (see DESIGN.md section 4 for the
experiment index).  Each module exposes ``run(...) -> ExperimentTable``
plus a ``main()`` for the CLI (``repro-experiments <name>``); the
``benchmarks/`` directory wraps the same entry points in pytest-benchmark
harnesses.
"""

from repro.experiments.common import ExperimentTable, resolve_machine
from repro.experiments.estimator import CycleCostEstimator, ProblemShape

__all__ = [
    "ExperimentTable",
    "resolve_machine",
    "CycleCostEstimator",
    "ProblemShape",
]
