"""Fig. 8 — two-stage approach on the glued matrix.

Paper setup: (n, m, bs, s) = (100000, 180, 60, 5); glued matrix whose
panels each have kappa = O(1e7) while kappa(V_{1:j}) grows as
2^{j-1} * O(1e7).  Track, per panel: the accumulated condition number of
[Q_{1:l-1}, Qhat_{l:j}] after stage 1 (markers every s steps) and the
orthogonality error of the final basis at every big-panel boundary
(markers every bs steps).

Expected shape (paper Fig. 8): even though the raw prefix condition blows
past 1e9 (condition (9) formally violated), the pre-processing keeps the
accumulated big panel at O(1) condition and the final error at O(eps).
"""

from __future__ import annotations


from repro.experiments.common import ExperimentTable, fmt
from repro.matrices.synthetic import glued_matrix
from repro.ortho.analysis import condition_number, orthogonality_error
from repro.ortho.base import BlockDriver, OrthoObserver
from repro.ortho.two_stage import TwoStageScheme
from repro.utils.rng import default_rng


class _Fig8Observer(OrthoObserver):
    def __init__(self) -> None:
        self.panel_conds: list[tuple[int, float]] = []
        self.big_errors: list[tuple[int, float]] = []

    def on_event(self, info, backend, basis) -> None:
        if info.stage == "first":
            self.panel_conds.append(
                (info.hi, condition_number(basis[:, : info.hi])))
        elif info.stage == "big_panel":
            self.big_errors.append(
                (info.hi, orthogonality_error(basis[:, : info.hi])))


def run(n: int = 100_000, m: int = 180, bs: int = 60, s: int = 5,
        panel_cond: float = 1e7, growth: float = 2.0,
        seed: int = 8) -> ExperimentTable:
    rng = default_rng(seed)
    g = glued_matrix(n, s, m // s, panel_cond=panel_cond, growth=growth,
                     rng=rng)
    obs = _Fig8Observer()
    driver = BlockDriver(TwoStageScheme(big_step=bs), panel_width=s)
    out = driver.run(g.matrix, observer=obs)
    table = ExperimentTable(
        "fig8", f"two-stage on glued matrix (n,m,bs,s)=({n},{m},{bs},{s}), "
                f"panel kappa {panel_cond:.0e}, growth {growth}",
        headers=["columns", "kappa(raw prefix)", "kappa(after stage 1)",
                 "ortho error (big-panel boundary)"])
    err_by_col = dict(obs.big_errors)
    for cols, cond in obs.panel_conds:
        raw = condition_number(g.prefix(cols // s - 1))
        table.add_row(cols, fmt(raw), fmt(cond),
                      fmt(err_by_col[cols]) if cols in err_by_col else "")
    final_err = orthogonality_error(out.q)
    table.add_note(f"final ||I - Q^T Q|| = {final_err:.3e} "
                   f"(paper: O(eps) despite condition (9) violation)")
    return table


def main(argv: list | None = None) -> None:
    import argparse
    p = argparse.ArgumentParser(description=__doc__)
    p.add_argument("--n", type=int, default=100_000)
    p.add_argument("--quick", action="store_true")
    args = p.parse_args(argv)
    n = 10_000 if args.quick else args.n
    print(run(n=n).render())


if __name__ == "__main__":
    main()
