"""Shared experiment plumbing: result tables, machine resolution."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ConfigurationError
from repro.parallel.machine import PRESETS, MachineSpec
from repro.utils.formatting import render_table


@dataclass
class ExperimentTable:
    """A paper artifact reproduction: rows + provenance notes.

    ``rows`` are printable cell lists matching ``headers``; ``notes``
    explain substitutions (reduced scale, surrogate matrices, modeled
    times) so the printed output is self-describing.
    """

    experiment_id: str
    title: str
    headers: list
    rows: list = field(default_factory=list)
    notes: list = field(default_factory=list)

    def add_row(self, *cells) -> None:
        self.rows.append(list(cells))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def render(self) -> str:
        out = render_table(self.headers, self.rows,
                           title=f"[{self.experiment_id}] {self.title}")
        if self.notes:
            out += "\n" + "\n".join(f"  note: {n}" for n in self.notes)
        return out

    def cell(self, row: int, col: int):
        return self.rows[row][col]

    def column(self, col: int) -> list:
        return [row[col] for row in self.rows]

    def to_csv(self, path) -> None:
        """Write headers + rows as CSV (notes become '#' comment lines)."""
        import csv

        with open(path, "w", newline="", encoding="utf-8") as fh:
            for note in [f"# [{self.experiment_id}] {self.title}",
                         *(f"# note: {n}" for n in self.notes)]:
                fh.write(note + "\n")
            writer = csv.writer(fh)
            writer.writerow(self.headers)
            writer.writerows(self.rows)


def resolve_machine(name: str | MachineSpec) -> MachineSpec:
    """Machine preset lookup for CLI/benchmark parameters."""
    if isinstance(name, MachineSpec):
        return name
    try:
        return PRESETS[name]()
    except KeyError:
        raise ConfigurationError(
            f"unknown machine {name!r}; presets: {', '.join(PRESETS)}"
        ) from None


def fmt(x: float, digits: int = 3) -> str:
    """Compact scientific/decimal formatting for table cells."""
    if x == 0:
        return "0"
    if abs(x) >= 1e4 or abs(x) < 1e-3:
        return f"{x:.{digits}e}"
    return f"{x:.{digits}g}"


def speedup(base: float, new: float) -> str:
    """Render a 'Nx' speedup cell like the paper's tables."""
    if new <= 0:
        return "-"
    return f"{base / new:.1f}x"
