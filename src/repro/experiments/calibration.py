"""LogGP calibration closes the predicted-vs-measured loop.

``backend_validation`` shows the mp executor and the sim planner agree
bit-for-bit and gates their *share* drift under the deliberately loose
:data:`~repro.obs.drift.DEFAULT_DRIFT_BOUND` — loose because the
modeled machine (a V100 cluster) is nothing like the CI host actually
timing the ranks.  This experiment removes that excuse:

1. run each ``backend_validation`` scheme on ``backend="mp"`` with
   span streams enabled (measured wall clock + the modeled twin);
2. fit the LogGP machine constants from the twin span pairing
   (:func:`repro.obs.calibrate.calibrate`), producing a MachineSpec
   describing *this host*;
3. re-run the identical solve on ``backend="sim"`` under the
   calibrated machine (metrics enabled) and compare its predictions
   against the same measured timeline.

Asserted per scheme: the calibrated model's worst per-phase error —
relative error after scale removal AND share drift — is **strictly
smaller** than the uncalibrated twin's, and the calibrated share drift
sits under :data:`CALIBRATED_DRIFT_BOUND`, a bound tighter than the
uncalibrated gate.  Nightly CI runs ``--quick`` and uploads the
``BENCH_calibration.json`` artifact plus the Prometheus metrics
snapshot of the calibrated run.
"""

from __future__ import annotations

from datetime import datetime, timezone
from pathlib import Path

import numpy as np

from repro.bench.artifacts import (
    BenchArtifact,
    BenchRecord,
    collect_environment,
)
from repro.experiments.backend_validation import (
    SCHEMES,
    _scheme_setup,
    phase_breakdown,
)
from repro.experiments.common import ExperimentTable, fmt
from repro.krylov.simulation import Simulation
from repro.krylov.sstep_gmres import sstep_gmres
from repro.matrices.stencil import laplace2d
from repro.obs.calibrate import calibrate
from repro.obs.cli import summarize_doc
from repro.obs.drift import DEFAULT_DRIFT_BOUND, drift_report

#: Share-drift gate for the *calibrated* model — tighter than the
#: uncalibrated :data:`DEFAULT_DRIFT_BOUND` (0.95): once the constants
#: describe the host that produced the measurements, the model has no
#: machine-mismatch excuse left.
CALIBRATED_DRIFT_BOUND = 0.5

assert CALIBRATED_DRIFT_BOUND < DEFAULT_DRIFT_BOUND


def _max_finite_rel_error(report) -> float:
    """Worst finite per-phase scale-removed relative error."""
    errs = [p.rel_error for p in report.phases
            if p.rel_error == p.rel_error and p.rel_error != float("inf")]
    return max(errs, default=0.0)


def run_scheme(scheme_name: str, *, nx: int, ranks: int, s: int,
               restart: int, tol: float, maxiter: int) -> dict:
    """Calibrate one scheme: mp run -> fit -> calibrated sim re-run."""
    a = laplace2d(nx)
    b = np.ones(a.shape[0])

    scheme, options = _scheme_setup(scheme_name, restart)
    with Simulation(a, ranks=ranks, backend="mp", spans=True) as mp_sim:
        snap = mp_sim.tracer.snapshot()
        twin_snap = mp_sim.comm.modeled.snapshot()
        sstep_gmres(mp_sim, b, s=s, restart=restart, tol=tol,
                    maxiter=maxiter, scheme=scheme, options=options)
        measured_totals = mp_sim.tracer.since(snap)
        uncal_totals = mp_sim.comm.modeled.since(twin_snap)
        measured_spans = mp_sim.tracer.spans
        modeled_spans = mp_sim.comm.modeled.spans
        base = mp_sim.machine

    uncal = drift_report(uncal_totals, measured_totals,
                         modeled_spans=modeled_spans,
                         measured_spans=measured_spans)
    fit = calibrate(modeled_spans + measured_spans, base=base, ranks=ranks)

    scheme, options = _scheme_setup(scheme_name, restart)
    with Simulation(a, ranks=ranks, machine=fit.machine, backend="sim",
                    spans=True, metrics=True) as cal_sim:
        snap = cal_sim.tracer.snapshot()
        sstep_gmres(cal_sim, b, s=s, restart=restart, tol=tol,
                    maxiter=maxiter, scheme=scheme, options=options)
        cal_totals = cal_sim.tracer.since(snap)
        cal_spans = cal_sim.tracer.spans
        metrics_snapshot = cal_sim.metrics.snapshot()

    cal = drift_report(cal_totals, measured_totals,
                       modeled_spans=cal_spans,
                       measured_spans=measured_spans)
    return {
        "scheme": scheme_name,
        "fit": fit,
        "uncalibrated": uncal,
        "calibrated": cal,
        "measured_totals": measured_totals,
        "uncal_totals": uncal_totals,
        "cal_totals": cal_totals,
        "measured_summary": summarize_doc(measured_spans),
        "metrics_snapshot": metrics_snapshot,
        "uncal_breakdown": phase_breakdown(uncal_totals),
        "cal_breakdown": phase_breakdown(cal_totals),
        "measured_breakdown": phase_breakdown(measured_totals),
    }


def run(nx: int = 40, ranks: int = 4, s: int = 5, restart: int = 30,
        tol: float = 1.0e-8, maxiter: int = 4000, schemes=SCHEMES,
        drift_bound: float | None = CALIBRATED_DRIFT_BOUND
        ) -> tuple[ExperimentTable, BenchArtifact, str]:
    """Calibrate every scheme; returns (table, artifact, prometheus).

    Per scheme, asserts the calibrated model beats the uncalibrated
    twin on BOTH error metrics (worst finite per-phase relative error
    and worst share drift, strictly), and — when ``drift_bound`` is set
    — that the calibrated share drift sits under it.  The returned
    Prometheus text is the calibrated run's metrics snapshot (the
    nightly-uploaded ``metrics_calibration.prom``).
    """
    table = ExperimentTable(
        "calibration",
        f"LogGP constants fitted from measured mp spans, then re-predicted "
        f"(laplace2d({nx}), p={ranks}, s={s}, m={restart})",
        headers=["scheme", "model", "scale", "max rel err",
                 "max share drift", "net pairs", "kernel pairs"])
    records = []
    prom_chunks = []
    for name in schemes:
        out = run_scheme(name, nx=nx, ranks=ranks, s=s, restart=restart,
                         tol=tol, maxiter=maxiter)
        uncal, cal, fit = out["uncalibrated"], out["calibrated"], out["fit"]
        uncal_err = _max_finite_rel_error(uncal)
        cal_err = _max_finite_rel_error(cal)
        for label, rep, err in (("uncalibrated", uncal, uncal_err),
                                ("calibrated", cal, cal_err)):
            table.add_row(
                name, label, fmt(rep.scale), fmt(err),
                f"{rep.max_share_drift:.3f}",
                str(fit.n_net_pairs), str(fit.n_kernel_pairs))
        if not cal_err < uncal_err:
            raise AssertionError(
                f"{name}: calibrated per-phase relative error {cal_err:.3f} "
                f"is not strictly smaller than uncalibrated "
                f"{uncal_err:.3f} —\n{cal.summary()}")
        if not cal.max_share_drift < uncal.max_share_drift:
            raise AssertionError(
                f"{name}: calibrated share drift {cal.max_share_drift:.3f} "
                f"is not strictly smaller than uncalibrated "
                f"{uncal.max_share_drift:.3f} —\n{cal.summary()}")
        if drift_bound is not None and not cal.within(drift_bound):
            raise AssertionError(
                f"{name}: calibrated share drift {cal.max_share_drift:.3f} "
                f"exceeds the tightened bound {drift_bound} —\n"
                f"{cal.summary()}")
        prom_chunks.append(out["metrics_snapshot"].to_prometheus())
        records.append(BenchRecord(
            name=f"calibration[{name}]",
            group="calibration",
            mean=float(out["measured_totals"].clock),
            min=float(out["measured_totals"].clock),
            median=float(out["measured_totals"].clock),
            stddev=0.0,
            rounds=1,
            iterations=1,
            extra={
                "scheme": name,
                "ranks": ranks, "nx": nx, "s": s, "restart": restart,
                "fit": fit.to_dict(),
                "uncalibrated_drift": uncal.to_dict(),
                "calibrated_drift": cal.to_dict(),
                "uncalibrated_max_rel_error": uncal_err,
                "calibrated_max_rel_error": cal_err,
                "drift_bound": drift_bound,
                "uncalibrated_breakdown": out["uncal_breakdown"],
                "calibrated_breakdown": out["cal_breakdown"],
                "measured_breakdown": out["measured_breakdown"],
                "measured_trace_summary": out["measured_summary"],
                "metrics": out["metrics_snapshot"].to_dict(),
            }))
    table.add_note("uncalibrated rows compare the mp run's modeled twin "
                   "(V100-cluster constants) against its measured wall "
                   "clock; calibrated rows re-predict with constants "
                   "fitted from that run's span pairing")
    table.add_note("asserted per scheme: calibrated max rel error and "
                   "share drift strictly beat uncalibrated"
                   + (f", and share drift < {drift_bound} (tighter than "
                      f"the uncalibrated gate {DEFAULT_DRIFT_BOUND})"
                      if drift_bound is not None else ""))
    table.add_note("driver-side charges (panel QR, sketch apply, TSQR "
                   "tree) are excluded from the network fit")
    artifact = BenchArtifact(
        name="calibration",
        created_utc=datetime.now(timezone.utc).isoformat(timespec="seconds"),
        environment=collect_environment(),
        benchmarks=records)
    return table, artifact, "\n".join(prom_chunks)


def main(argv: list | None = None) -> None:
    import argparse
    p = argparse.ArgumentParser(description=__doc__)
    p.add_argument("--nx", type=int, default=40)
    p.add_argument("--ranks", type=int, default=4)
    p.add_argument("--s", type=int, default=5)
    p.add_argument("--restart", type=int, default=30)
    p.add_argument("--out", default=".",
                   help="directory for BENCH_calibration.json and "
                        "metrics_calibration.prom")
    p.add_argument("--quick", action="store_true")
    args = p.parse_args(argv)
    nx = 24 if args.quick else args.nx
    restart = 12 if args.quick else args.restart
    s = min(args.s, restart)
    table, artifact, prom = run(nx=nx, ranks=args.ranks, s=s,
                                restart=restart)
    print(table.render())
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = artifact.write(out_dir / "BENCH_calibration.json")
    prom_path = out_dir / "metrics_calibration.prom"
    prom_path.write_text(prom)
    print(f"\nwrote {path}")
    print(f"wrote {prom_path}")


if __name__ == "__main__":
    main()
