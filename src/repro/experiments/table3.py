"""Table III — strong scaling of the four solver configurations.

Paper setup: 9-point 2D Laplace, n = 2000^2, 1..32 Summit nodes (6 MPI
ranks = 6 V100 per node, 192 GPUs at 32 nodes); configurations
GMRES+CGS2, s-step+BCGS2-CholQR2, s-step+BCGS-PIP2, and
s-step+two-stage(bs=m); per node count the paper reports iterations,
SpMV / Ortho / Total seconds, and the speedups of each s-step variant
over standard GMRES.

Our reproduction evaluates the validated cycle-cost model at each rank
count and multiplies by the paper's iteration counts.  The target shape:
BCGS-PIP2 beats BCGS2 increasingly with node count (latency), two-stage
beats BCGS-PIP2 by ~1.4-1.7x in Ortho, and the total-time speedup of
two-stage over GMRES grows from ~1.7x (1 node) to ~2.5x (32 nodes).
"""

from __future__ import annotations

from repro.experiments.common import ExperimentTable, fmt, resolve_machine, speedup
from repro.experiments.estimator import CycleCostEstimator, ProblemShape
from repro.experiments.paper_data import TABLE3, TABLE3_ITERS

CONFIGS = ["gmres", "bcgs2", "pip2", "two_stage"]


def modeled_config_times(nodes: int, nx: int = 2000, m: int = 60,
                         s: int = 5, machine: str = "summit") -> dict:
    mach = resolve_machine(machine)
    ranks = nodes * mach.ranks_per_node
    est = CycleCostEstimator(mach, ranks, ProblemShape.stencil2d(nx, 9),
                             m=m, s=s)
    cycles = {k: TABLE3_ITERS[k] / m for k in CONFIGS}
    out = {}
    for key in CONFIGS:
        if key == "gmres":
            tr = est.standard_gmres_cycle()
        elif key == "two_stage":
            tr = est.sstep_cycle("two_stage", bs=m)
        else:
            tr = est.sstep_cycle(key)
        ph = est.phase_seconds(tr)
        out[key] = {
            "spmv": cycles[key] * (ph["spmv"] + ph["precond"]),
            "ortho": cycles[key] * ph["ortho"],
            "total": cycles[key] * ph["total"],
        }
    return out


def run(node_counts: list | None = None, nx: int = 2000, m: int = 60,
        s: int = 5) -> ExperimentTable:
    node_counts = node_counts or [1, 2, 4, 8, 16, 32]
    table = ExperimentTable(
        "table3",
        f"Strong scaling, 9-pt 2D Laplace n={nx}^2, 6 ranks/node (Summit)",
        headers=["nodes", "config", "iters(paper)", "SpMV s", "Ortho s",
                 "Total s", "ortho speedup", "total speedup",
                 "paper ortho", "paper total", "paper ortho-spdp"])
    for nodes in node_counts:
        ours = modeled_config_times(nodes, nx=nx, m=m, s=s)
        base = ours["gmres"]
        paper_rows = TABLE3.get(nodes, {})
        for key in CONFIGS:
            t = ours[key]
            paper = paper_rows.get(key)
            paper_base = paper_rows.get("gmres")
            table.add_row(
                nodes, key, TABLE3_ITERS[key],
                fmt(t["spmv"]), fmt(t["ortho"]), fmt(t["total"]),
                speedup(base["ortho"], t["ortho"]),
                speedup(base["total"], t["total"]),
                paper[1] if paper else "-",
                paper[2] if paper else "-",
                (f"{paper_base[1] / paper[1]:.1f}x"
                 if paper and paper_base and key != "gmres" else "-"))
    table.add_note("modeled seconds = validated cycle cost model x paper "
                   "iteration counts (DESIGN.md §3)")
    return table


def main(argv: list | None = None) -> None:
    import argparse
    p = argparse.ArgumentParser(description=__doc__)
    p.add_argument("--nx", type=int, default=2000)
    p.add_argument("--nodes", type=int, nargs="*", default=None)
    args = p.parse_args(argv)
    print(run(node_counts=args.nodes, nx=args.nx).render())


if __name__ == "__main__":
    main()
