"""CLI dispatcher: ``repro-experiments <name> [args...]``.

Names mirror the paper artifacts: fig6 fig7 fig8 fig9 table2 table3
fig10 fig11 fig12 table4 fig13 ablations, plus ``all`` (quick versions
of everything — what EXPERIMENTS.md is generated from).
"""

from __future__ import annotations

import sys

from repro.experiments import (
    ablations,
    backend_validation,
    ca_mpk_tradeoff,
    calibration,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10_12,
    fig13,
    overlap_tradeoff,
    precision_stability,
    rgs_convergence,
    service_throughput,
    sketch_stability,
    table2,
    table3,
    table4,
)

_DISPATCH = {
    "fig6": fig6.main,
    "fig7": fig7.main,
    "fig8": fig8.main,
    "fig9": fig9.main,
    "table2": table2.main,
    "table3": table3.main,
    "fig10": lambda argv: fig10_12.main(["fig10"] + (argv or [])),
    "fig11": lambda argv: fig10_12.main(["fig11"] + (argv or [])),
    "fig12": lambda argv: fig10_12.main(["fig12"] + (argv or [])),
    "table4": table4.main,
    "fig13": fig13.main,
    "ablations": ablations.main,
    "sketch": sketch_stability.main,
    "rgs": rgs_convergence.main,
    "precision": precision_stability.main,
    "ca_mpk": ca_mpk_tradeoff.main,
    "overlap": overlap_tradeoff.main,
    "service": service_throughput.main,
    "backend": backend_validation.main,
    "calibrate": calibration.main,
}


def run_all_quick() -> None:
    """Quick pass over every artifact (reduced sizes), in paper order."""
    print(fig6.run(n=20_000, seeds=3).render(), "\n")
    print(fig7.run(n=10_000, seeds=3).render(), "\n")
    print(fig8.run(n=20_000).render(), "\n")
    print(fig9.run(run_n=5_000).render(), "\n")
    print(table2.run(measure_nx=64).render(), "\n")
    print(table3.run().render(), "\n")
    for t in fig10_12.run_all():
        print(t.render(), "\n")
    print(table4.run().render(), "\n")
    print(fig13.run().render(), "\n")
    print(ablations.run_sync_vs_reuse().render(), "\n")
    print(ablations.run_bs_grid().render(), "\n")
    print(ablations.run_basis_conditioning(nx=24).render(), "\n")
    print(ablations.run_step_size_cliff(n=5000).render(), "\n")
    print(ablations.run_intra_kernels(n=20000).render(), "\n")
    print(ablations.run_step_strategies(nx=32).render(), "\n")
    print(sketch_stability.run(n=2000).render(), "\n")
    print(rgs_convergence.run(n=250, maxiter=800).render(), "\n")
    for t in precision_stability.run(n=1500, nx=20, maxiter=3000):
        print(t.render(), "\n")
    print(ca_mpk_tradeoff.run(nx=24, ranks=8).render(), "\n")
    print(overlap_tradeoff.run(
        nx=48, ranks=8, s=5, restart=15, bw_inter=1.0e6,
        multipliers=overlap_tradeoff.LATENCY_MULTIPLIERS[:-1])[0].render(),
        "\n")
    print(service_throughput.run(nx=12, ranks=4, s=4, restart=12)[0]
          .render(), "\n")
    print(backend_validation.run(nx=24, restart=12, repeats=1)[0].render(),
          "\n")
    print(calibration.run(nx=24, restart=12)[0].render(), "\n")


def main(argv: list | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        names = " ".join(sorted(_DISPATCH) + ["all"])
        print(f"usage: repro-experiments <name> [options]\nnames: {names}")
        return 0
    name, rest = argv[0], argv[1:]
    if name == "all":
        run_all_quick()
        return 0
    if name not in _DISPATCH:
        print(f"unknown experiment {name!r}; try --help")
        return 2
    _DISPATCH[name](rest)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
