"""Overlap windows under growing latency: how much comm stays exposed?

The nonblocking collectives (:mod:`repro.parallel.communicator`) model a
LogGP-style overlap window — compute charged between a ``post_*`` and
its ``wait`` drains the collective's modeled time, so only the
*unhidden* remainder lands on the clock.  This experiment measures the
two consumers of that window on a congested machine as per-message
latency grows:

1. **PA2 matrix powers** (``mpk_mode="ca_overlap"``): the deep-ring
   exchange is posted behind the first owned-rows SpMV.  Exposure is
   governed by the race between the ring's wire time (mostly the
   congested-bandwidth term, latency-multiplier-independent) and the
   SpMV's launch overhead (which scales with the multiplier): as every
   latency constant grows ``L``-fold, the compute window grows with it
   while the ring's bandwidth-bound cost stays put — so the exposed
   fraction of the posted exchange shrinks *strictly monotonically* in
   ``L`` (asserted).
2. **Overlapped pipelined GMRES** (``comm_overlap=True``): the
   settle-side half of each iteration's fused DCGS-2 reduction posts
   before the operator application.  The tiny reductions are
   latency-bound, the hiding window is the whole SpMV — the table
   reports how much of the posted half stays exposed per cycle.

Machine: Summit with the inter-node link congested
(``net_bandwidth_inter`` clamped low) and EVERY latency constant —
network hops, device sync, kernel launch, SpMV fixed overhead — scaled
by the multiplier ``L``.  Both variants are asserted bit-identical to
their blocking counterparts per row (overlap changes charges, never
values).

Emits ``BENCH_overlap.json`` (standard
:class:`~repro.bench.artifacts.BenchArtifact` schema, modeled seconds)
and a Perfetto/Chrome trace ``trace_overlap.json`` of the largest-``L``
PA2 run whose ``cat="post"`` markers and ``cat="comm_overlap"`` window
spans show the hidden vs exposed split visually.  The smoke-size
variant is asserted in ``tests/experiments/test_overlap_tradeoff.py``.
"""

from __future__ import annotations

import json

from datetime import datetime, timezone
from pathlib import Path

import numpy as np

from repro.bench.artifacts import (
    BenchArtifact,
    BenchRecord,
    collect_environment,
)
from repro.experiments.common import ExperimentTable, fmt
from repro.krylov.basis import MonomialBasis
from repro.krylov.mpk import MatrixPowersKernel, PreconditionedOperator
from repro.krylov.options import SolverOptions
from repro.krylov.pipelined import pipelined_gmres
from repro.krylov.simulation import Simulation
from repro.krylov.sstep_gmres import _panel_bounds
from repro.matrices.stencil import laplace2d
from repro.obs.export import chrome_trace_doc
from repro.parallel.machine import MachineSpec, summit

#: Latency multipliers swept (full run); ``--quick`` drops the last.
LATENCY_MULTIPLIERS = (1.0, 2.0, 4.0, 8.0)

#: Congested inter-node bandwidth (bytes/s) — low enough that the
#: posted deep ring is wire-time-dominated, so part of it stays exposed
#: and the exposure trend in ``L`` is visible.
CONGESTED_BW = 2.0e6


def congested_summit(lat_mult: float,
                     bw_inter: float = CONGESTED_BW) -> MachineSpec:
    """Summit, congested inter-node link, ALL latency constants scaled.

    Scaling every per-message/per-launch constant together (network
    hops, device sync, kernel launch, SpMV fixed overhead) models a
    machine whose latency:bandwidth ratio degrades uniformly — the
    regime nonblocking collectives are aimed at.
    """
    m = summit()
    return m.with_overrides(
        name=f"summit_cong_lat{lat_mult:g}x",
        net_bandwidth_inter=bw_inter,
        net_latency_intra=m.net_latency_intra * lat_mult,
        net_latency_inter=m.net_latency_inter * lat_mult,
        device_sync_latency=m.device_sync_latency * lat_mult,
        kernel_latency=m.kernel_latency * lat_mult,
        spmv_fixed_overhead=m.spmv_fixed_overhead * lat_mult)


def _overlap_stats(tracer, snap) -> dict:
    """Exposed/hidden seconds of the posted collectives since ``snap``.

    Exposed = duration of the wait charges (the kernel spans annotated
    with ``overlapped_seconds``); hidden = the tracer's overlapped
    accumulator.  ``exposed_frac`` is exposure as a fraction of all
    posted comm — NaN-free: windows that posted nothing report 0.0.
    """
    totals = tracer.since(snap)
    exposed = sum(sp.duration for sp in tracer.spans
                  if sp.cat == "kernel"
                  and sp.overlapped_seconds is not None)
    hidden = sum(totals.overlapped.values())
    posted = exposed + hidden
    return {
        "clock": totals.clock,
        "exposed_seconds": exposed,
        "hidden_seconds": hidden,
        "exposed_frac": exposed / posted if posted > 0.0 else 0.0,
        "totals": totals.to_dict(),
    }


def mpk_basis_run(mode: str, machine: MachineSpec, *, nx: int, ranks: int,
                  s: int, restart: int, seed: int = 0) -> dict:
    """One restart cycle of MPK panels; returns overlap + basis stats."""
    sim = Simulation(laplace2d(nx), ranks=ranks, machine=machine,
                     spans=True)
    op = PreconditionedOperator(sim.matrix)
    mpk = MatrixPowersKernel(op, MonomialBasis(), mode=mode)
    basis = sim.zeros(restart + 1)
    rng = np.random.default_rng(seed)
    v0 = rng.standard_normal(sim.n)
    v0 /= np.linalg.norm(v0)
    basis.view_cols(0).assign_from(sim.vector_from(v0))
    snap = sim.tracer.snapshot()
    for lo, hi in _panel_bounds(s, restart + 1):
        mpk.extend(basis, max(lo, 1), hi)
    stats = _overlap_stats(sim.tracer, snap)
    stats["basis"] = basis.to_global()
    stats["tracer"] = sim.tracer
    return stats


def pipelined_run(overlap: bool, machine: MachineSpec, *, nx: int,
                  ranks: int, restart: int) -> dict:
    """One pipelined-GMRES cycle (tol unreachable); overlap stats."""
    sim = Simulation(laplace2d(nx), ranks=ranks, machine=machine,
                     spans=True)
    b = sim.ones_solution_rhs()
    snap = sim.tracer.snapshot()
    res = pipelined_gmres(sim, b, restart=restart, tol=1e-30,
                          maxiter=restart,
                          options=SolverOptions(comm_overlap=overlap))
    stats = _overlap_stats(sim.tracer, snap)
    stats["x"] = res.x
    stats["sync_count"] = res.sync_count
    return stats


def run(nx: int = 64, ranks: int = 16, s: int = 8, restart: int = 24,
        pipe_nx: int = 48, pipe_ranks: int = 8, pipe_restart: int = 15,
        multipliers=LATENCY_MULTIPLIERS,
        bw_inter: float = CONGESTED_BW
        ) -> tuple[ExperimentTable, BenchArtifact, dict]:
    """Sweep latency multipliers; returns (table, artifact, trace_doc).

    Asserts, per multiplier: bit-identity of the overlapped variants to
    their blocking counterparts, and — across multipliers — strictly
    decreasing PA2 exposed fraction.
    """
    table = ExperimentTable(
        "overlap_tradeoff",
        f"exposed vs hidden comm under posted collectives, congested "
        f"summit (inter b/w {bw_inter:g} B/s), all latency constants "
        f"x L  [PA2: laplace2d({nx}), p={ranks}, s={s}, m={restart}; "
        f"pipelined: laplace2d({pipe_nx}), p={pipe_ranks}, "
        f"m={pipe_restart}]",
        headers=["consumer", "L", "blocking s", "overlap s", "exposed s",
                 "hidden s", "exposed frac"])
    records = []
    mpk_fracs = []
    trace_doc = None
    for lat in multipliers:
        machine = congested_summit(lat, bw_inter)
        ca = mpk_basis_run("ca", machine, nx=nx, ranks=ranks, s=s,
                           restart=restart)
        ov = mpk_basis_run("ca_overlap", machine, nx=nx, ranks=ranks, s=s,
                           restart=restart)
        if not np.array_equal(ca["basis"], ov["basis"]):
            raise AssertionError(
                f"ca_overlap basis diverged from ca at L={lat:g}")
        mpk_fracs.append(ov["exposed_frac"])
        table.add_row("mpk_pa2", f"{lat:g}x", fmt(ca["clock"]),
                      fmt(ov["clock"]), fmt(ov["exposed_seconds"]),
                      fmt(ov["hidden_seconds"]),
                      f"{ov['exposed_frac']:.1%}")
        records.append(BenchRecord(
            name=f"overlap_tradeoff[mpk_pa2,lat{lat:g}x]",
            group="overlap_tradeoff",
            mean=ov["clock"], min=ov["clock"], median=ov["clock"],
            stddev=0.0, rounds=1, iterations=1,
            extra={
                "consumer": "mpk_pa2", "latency_multiplier": lat,
                "bw_inter": bw_inter, "nx": nx, "ranks": ranks,
                "s": s, "restart": restart,
                "blocking_seconds": ca["clock"],
                "overlap_seconds": ov["clock"],
                "exposed_seconds": ov["exposed_seconds"],
                "hidden_seconds": ov["hidden_seconds"],
                "exposed_frac": ov["exposed_frac"],
                "bit_identical": True,
                "totals": ov["totals"],
            }))
        # Perfetto artifact: the largest-L PA2 run (clearest windows)
        trace_doc = chrome_trace_doc(ov["tracer"])

        base = pipelined_run(False, machine, nx=pipe_nx, ranks=pipe_ranks,
                             restart=pipe_restart)
        pipe = pipelined_run(True, machine, nx=pipe_nx, ranks=pipe_ranks,
                             restart=pipe_restart)
        if base["x"].tobytes() != pipe["x"].tobytes():
            raise AssertionError(
                f"overlapped pipelined solve diverged at L={lat:g}")
        table.add_row("pipelined", f"{lat:g}x", fmt(base["clock"]),
                      fmt(pipe["clock"]), fmt(pipe["exposed_seconds"]),
                      fmt(pipe["hidden_seconds"]),
                      f"{pipe['exposed_frac']:.1%}")
        records.append(BenchRecord(
            name=f"overlap_tradeoff[pipelined,lat{lat:g}x]",
            group="overlap_tradeoff",
            mean=pipe["clock"], min=pipe["clock"], median=pipe["clock"],
            stddev=0.0, rounds=1, iterations=1,
            extra={
                "consumer": "pipelined", "latency_multiplier": lat,
                "bw_inter": bw_inter, "nx": pipe_nx, "ranks": pipe_ranks,
                "restart": pipe_restart,
                "blocking_seconds": base["clock"],
                "overlap_seconds": pipe["clock"],
                "exposed_seconds": pipe["exposed_seconds"],
                "hidden_seconds": pipe["hidden_seconds"],
                "exposed_frac": pipe["exposed_frac"],
                "sync_count_blocking": base["sync_count"],
                "sync_count_overlap": pipe["sync_count"],
                "bit_identical": True,
                "totals": pipe["totals"],
            }))
    for prev, cur in zip(mpk_fracs, mpk_fracs[1:]):
        if not cur < prev:
            raise AssertionError(
                f"PA2 exposed fraction must shrink strictly with the "
                f"latency multiplier, got {mpk_fracs}")
    table.add_note("exposed/hidden = the posted collectives' wait-charged "
                   "remainder vs what compute drained inside the overlap "
                   "window; exposed frac = exposed / (exposed + hidden)")
    table.add_note("every latency constant (net hops, device sync, kernel "
                   "launch, SpMV fixed overhead) scales with L; the "
                   "congested-link bandwidth term does not — so the "
                   "compute window outgrows the wire time and PA2 "
                   "exposure shrinks strictly with L (asserted)")
    table.add_note("overlapped variants are bit-identical to blocking per "
                   "row (asserted); overlap moves charges, never values")
    artifact = BenchArtifact(
        name="overlap",
        created_utc=datetime.now(timezone.utc).isoformat(timespec="seconds"),
        environment=collect_environment(),
        benchmarks=records)
    return table, artifact, trace_doc


def main(argv: list | None = None) -> None:
    import argparse
    p = argparse.ArgumentParser(description=__doc__)
    p.add_argument("--nx", type=int, default=64)
    p.add_argument("--ranks", type=int, default=16)
    p.add_argument("--s", type=int, default=8)
    p.add_argument("--restart", type=int, default=24)
    p.add_argument("--out", default=".",
                   help="directory for BENCH_overlap.json and "
                        "trace_overlap.json")
    p.add_argument("--quick", action="store_true")
    args = p.parse_args(argv)
    kwargs = dict(nx=args.nx, ranks=args.ranks, s=args.s,
                  restart=args.restart)
    if args.quick:
        kwargs = dict(nx=48, ranks=8, s=5, restart=15,
                      multipliers=LATENCY_MULTIPLIERS[:-1],
                      bw_inter=1.0e6)
    table, artifact, trace_doc = run(**kwargs)
    print(table.render())
    out = Path(args.out)
    path = artifact.write(out / "BENCH_overlap.json")
    print(f"\nwrote {path}")
    trace_path = out / "trace_overlap.json"
    trace_path.parent.mkdir(parents=True, exist_ok=True)
    trace_path.write_text(json.dumps(trace_doc) + "\n")
    print(f"wrote {trace_path}")


if __name__ == "__main__":
    main()
