"""Table IV — time per iteration across the matrix suite on 96 GPUs.

Paper setup: 3D model problems (Laplace3D, Elasticity3D) plus five
SuiteSparse matrices on 16 Summit nodes (96 GPUs, ParMETIS partitions);
for each matrix and each solver configuration, the time per iteration
split into SpMV / Ortho / Total, with speedup factors over standard
GMRES annotated.

Our reproduction evaluates the cycle cost model at each matrix's
(n, nnz) — exactly the paper's values — with a surface-law halo estimate
standing in for the ParMETIS partition (DESIGN.md §3).  Optionally a
reduced-scale surrogate convergence run exercises the same numerics.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentTable, fmt, resolve_machine, speedup
from repro.experiments.estimator import CycleCostEstimator, ProblemShape
from repro.experiments.paper_data import TABLE4, TABLE4_SHAPES

CONFIGS = ["gmres", "bcgs2", "pip2", "two_stage"]


def problem_shape(name: str, ranks: int) -> ProblemShape:
    paper_n, nnz_per_row, kind = TABLE4_SHAPES[name]
    if kind == "stencil3d":
        return ProblemShape.stencil3d(100, nnz_per_row=nnz_per_row)
    if kind == "elasticity":
        return ProblemShape.stencil3d(100, dofs_per_node=3,
                                      nnz_per_row=nnz_per_row)
    return ProblemShape.irregular(paper_n, nnz_per_row, ranks)


def per_iteration_times(name: str, nodes: int = 16, m: int = 60,
                        s: int = 5, machine: str = "summit") -> dict:
    mach = resolve_machine(machine)
    ranks = nodes * mach.ranks_per_node
    shape = problem_shape(name, ranks)
    est = CycleCostEstimator(mach, ranks, shape, m=m, s=s)
    out = {}
    for key in CONFIGS:
        if key == "gmres":
            tr = est.standard_gmres_cycle()
        elif key == "two_stage":
            tr = est.sstep_cycle("two_stage", bs=m)
        else:
            tr = est.sstep_cycle(key)
        ph = est.per_iteration(tr)
        out[key] = {"spmv": ph["spmv"] + ph["precond"],
                    "ortho": ph["ortho"], "total": ph["total"]}
    return out


def run(nodes: int = 16, m: int = 60, s: int = 5,
        matrices: list | None = None) -> ExperimentTable:
    matrices = matrices or list(TABLE4_SHAPES)
    table = ExperimentTable(
        "table4",
        f"Time per iteration (ms) on {nodes} Summit nodes "
        f"({nodes * 6} GPUs)",
        headers=["matrix", "config", "SpMV ms", "Ortho ms", "Total ms",
                 "ortho spdp", "total spdp", "paper ortho ms",
                 "paper total ms", "paper iters"])
    for name in matrices:
        ours = per_iteration_times(name, nodes=nodes, m=m, s=s)
        base = ours["gmres"]
        for key in CONFIGS:
            t = ours[key]
            paper = TABLE4[name][key]
            table.add_row(
                name, key,
                fmt(t["spmv"] * 1e3), fmt(t["ortho"] * 1e3),
                fmt(t["total"] * 1e3),
                speedup(base["ortho"], t["ortho"]),
                speedup(base["total"], t["total"]),
                paper[2], paper[3], paper[0])
    table.add_note("modeled ms/iteration at the paper's (n, nnz) with a "
                   "surface-law halo standing in for ParMETIS partitions")
    return table


def main(argv: list | None = None) -> None:
    import argparse
    p = argparse.ArgumentParser(description=__doc__)
    p.add_argument("--nodes", type=int, default=16)
    args = p.parse_args(argv)
    print(run(nodes=args.nodes).render())


if __name__ == "__main__":
    main()
