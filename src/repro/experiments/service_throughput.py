"""Service throughput: solves/sec vs batch width through the SolveQueue.

The multi-RHS block solver (:func:`repro.krylov.block.block_sstep_gmres`)
amortizes each cycle's collective latency across every solve in flight:
a width-``w`` batch pays ONE allreduce/halo launch per barrier while the
payload grows ``w``-fold.  This experiment drives that claim end to end
through the service front end (:class:`repro.service.SolveQueue`): a
fixed backlog of ``N`` identical-workload solve requests is dispatched
at batch widths 1..``N`` on two machines — stock Summit and the
latency-dominated ``summit_lat16x`` regime from
:mod:`repro.experiments.ca_mpk_tradeoff` — and the modeled throughput
(solves per modeled second) is recorded per ``(machine, width)``.

Per-dispatch cost follows the affine model ``T(w) = F + w·V`` — ``F``
the width-independent collective/launch latency, ``V`` the per-member
compute and wire volume.  The sweep fits ``(F, V)`` by least squares
and reports the predicted *knee* ``w* = F / V``, the width where the
variable term catches the amortized fixed term and widening stops
paying.  In-run assertions (failing the artifact, not just a test):

* per-dispatch collective *counts* are identical at every width
  (latency amortization is real, not rescheduled);
* total collective payload *bytes* for the backlog are width-invariant
  (fusion concatenates messages, it does not shrink or inflate them);
* every request's solution is bit-identical at every width (batching
  changes when work runs, never what it computes);
* solves/sec improves strictly monotonically in width up to the
  predicted knee (all swept widths sit far below it);
* on ``summit_lat16x``, width-``N`` throughput is >= 3x width-1 — the
  CI-gated service speedup.

Emits ``BENCH_service.json`` (standard
:class:`~repro.bench.artifacts.BenchArtifact` schema, modeled seconds).
The ``--quick`` variant shrinks the grid and is asserted in
``tests/experiments/test_service_throughput.py``.
"""

from __future__ import annotations

from datetime import datetime, timezone
from pathlib import Path

import numpy as np

from repro.bench.artifacts import (
    BenchArtifact,
    BenchRecord,
    collect_environment,
)
from repro.experiments.ca_mpk_tradeoff import _summit_lat
from repro.experiments.common import ExperimentTable, fmt
from repro.krylov.simulation import Simulation
from repro.matrices.stencil import laplace2d
from repro.parallel.machine import summit
from repro.service import SolveQueue

#: Batch widths swept; the largest is also the backlog size ``N``.
WIDTHS = (1, 2, 4, 8)

#: Machines: stock Summit and the congested 16x-latency regime the
#: CI speedup gate targets.
MACHINES = (
    ("summit", summit),
    ("summit_lat16x", lambda: _summit_lat(16.0)),
)


def _backlog(n: int, count: int, seed: int = 0) -> list[np.ndarray]:
    """Deterministic request RHS vectors (unit norm, shared across widths)."""
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(count):
        b = rng.standard_normal(n)
        out.append(b / np.linalg.norm(b))
    return out


def run_width(machine_factory, width: int, backlog: list[np.ndarray], *,
              nx: int, ranks: int, s: int, restart: int) -> dict:
    """Dispatch the whole backlog at one batch width; return stats.

    Every request runs exactly one restart cycle (``tol`` unreachable,
    ``maxiter = restart``), so each ``(machine, width)`` cell is the
    same deterministic workload and throughput differences are purely
    the batching.
    """
    sim = Simulation(laplace2d(nx), ranks=ranks, machine=machine_factory())
    queue = SolveQueue(sim, max_width=width, max_wait=0.0,
                       s=s, restart=restart)
    rids = [queue.submit(b, tol=1e-30, maxiter=restart) for b in backlog]
    snap = sim.tracer.snapshot()
    queue.flush()
    elapsed = sim.tracer.since(snap).clock
    counts = sim.tracer.collective_counts(payload_bytes=True)
    results = [queue.result(r) for r in rids]
    if any(r.restarts != 1 for r in results):
        raise AssertionError("fixed-cycle run must do exactly one restart")
    return {
        "elapsed": elapsed,
        "batches": len(queue.dispatched_widths),
        "widths": tuple(queue.dispatched_widths),
        "counts": {k: v["count"] for k, v in counts.items()},
        "bytes": {k: v["bytes"] for k, v in counts.items()},
        "xs": [r.x for r in results],
    }


def run(nx: int = 16, ranks: int = 4, s: int = 5, restart: int = 20,
        widths=WIDTHS) -> tuple[ExperimentTable, BenchArtifact]:
    """Sweep width x machine; returns (table, artifact).

    See the module docstring for the in-run assertions.
    """
    widths = tuple(widths)
    backlog_n = max(widths)
    if any(backlog_n % w for w in widths):
        raise AssertionError(
            f"widths {widths} must divide the backlog size {backlog_n}")
    table = ExperimentTable(
        "service_throughput",
        f"solve requests batched through SolveQueue: backlog of "
        f"{backlog_n} one-cycle solves [laplace2d({nx}), p={ranks}, "
        f"s={s}, m={restart}] dispatched at width w; modeled solves/sec",
        headers=["machine", "width", "batches", "clock s", "solves/s",
                 "speedup", "allreduce/batch", "halo/batch"])
    records = []
    speedup_16x = None
    for label, factory in MACHINES:
        backlog = _backlog(nx * nx, backlog_n)
        runs = {w: run_width(factory, w, backlog, nx=nx, ranks=ranks,
                             s=s, restart=restart) for w in widths}
        base = runs[widths[0]]
        # fusion contracts: identical per-dispatch collective counts,
        # width-invariant total bytes, bit-identical per-request results
        per_batch0 = {k: base["counts"][k] // base["batches"]
                      for k in base["counts"]}
        for w in widths:
            r = runs[w]
            bad = {k: r["counts"][k] for k in r["counts"]
                   if r["counts"][k] * base["batches"]
                   != base["counts"][k] * r["batches"]}
            if bad or set(r["counts"]) != set(base["counts"]):
                raise AssertionError(
                    f"per-dispatch collective counts changed with width on "
                    f"{label}: w={w} gives {r['counts']} over "
                    f"{r['batches']} batches, expected {per_batch0} per "
                    f"batch")
            if r["bytes"] != base["bytes"]:
                raise AssertionError(
                    f"total collective bytes changed with width on "
                    f"{label}: w={w} gives {r['bytes']}, expected "
                    f"{base['bytes']}")
            for j, (x, x0) in enumerate(zip(r["xs"], base["xs"])):
                if not np.array_equal(x, x0):
                    raise AssertionError(
                        f"request {j} result diverged at width {w} on "
                        f"{label} — batching must not change values")
        # affine per-dispatch cost T(w) = F + w V, knee at F/V
        ws = np.array(widths, dtype=float)
        t = np.array([runs[w]["elapsed"] / runs[w]["batches"]
                      for w in widths])
        vf, f = np.polyfit(ws, t, 1)
        knee = f / vf if vf > 0 else float("inf")
        if knee <= max(widths):
            raise AssertionError(
                f"predicted knee {knee:.1f} inside the swept widths on "
                f"{label}; the monotonicity contract needs widths below it")
        rates = {w: backlog_n / runs[w]["elapsed"] for w in widths}
        for prev, cur in zip(widths, widths[1:]):
            if not rates[cur] > rates[prev]:
                raise AssertionError(
                    f"solves/sec must improve monotonically below the knee "
                    f"on {label}: w={cur} gives {rates[cur]:.3f} <= "
                    f"w={prev}'s {rates[prev]:.3f}")
        for w in widths:
            r = runs[w]
            speedup = rates[w] / rates[widths[0]]
            table.add_row(label, str(w), str(r["batches"]),
                          fmt(r["elapsed"]), f"{rates[w]:.1f}",
                          f"{speedup:.2f}x",
                          str(per_batch0.get("allreduce", 0)),
                          str(per_batch0.get("halo", 0)))
            records.append(BenchRecord(
                name=f"service[{label},w{w}]",
                group="service",
                mean=r["elapsed"], min=r["elapsed"], median=r["elapsed"],
                stddev=0.0, rounds=1, iterations=1,
                extra={
                    "machine": label, "width": w,
                    "backlog": backlog_n, "batches": r["batches"],
                    "nx": nx, "ranks": ranks, "s": s, "restart": restart,
                    "solves_per_sec": rates[w], "speedup": speedup,
                    "counts_per_batch": per_batch0,
                    "total_bytes": r["bytes"],
                    "knee_width": knee,
                    "fixed_seconds": float(f),
                    "variable_seconds": float(vf),
                    "bit_identical": True,
                }))
        if label == "summit_lat16x":
            speedup_16x = rates[max(widths)] / rates[widths[0]]
        table.add_note(
            f"{label}: fitted per-dispatch cost T(w) = {f:.3g} + "
            f"w x {vf:.3g} s; predicted knee at w* = F/V = {knee:.0f}")
    if speedup_16x is None or not speedup_16x >= 3.0:
        raise AssertionError(
            f"latency-dominated speedup gate: width-{max(widths)} must be "
            f">= 3x width-1 solves/sec on summit_lat16x, got "
            f"{speedup_16x}")
    table.add_note("per-dispatch collective counts are width-invariant and "
                   "total payload bytes width-invariant (asserted): the "
                   "batch fuses launches, it never reschedules or "
                   "shrinks messages")
    table.add_note("every request's solution is bit-identical at every "
                   "width (asserted): batching changes when work runs, "
                   "never what it computes")
    artifact = BenchArtifact(
        name="service",
        created_utc=datetime.now(timezone.utc).isoformat(timespec="seconds"),
        environment=collect_environment(),
        benchmarks=records)
    return table, artifact


def main(argv: list | None = None) -> None:
    import argparse
    p = argparse.ArgumentParser(description=__doc__)
    p.add_argument("--nx", type=int, default=16)
    p.add_argument("--ranks", type=int, default=4)
    p.add_argument("--s", type=int, default=5)
    p.add_argument("--restart", type=int, default=20)
    p.add_argument("--out", default=".",
                   help="directory for BENCH_service.json")
    p.add_argument("--quick", action="store_true")
    args = p.parse_args(argv)
    kwargs = dict(nx=args.nx, ranks=args.ranks, s=args.s,
                  restart=args.restart)
    if args.quick:
        kwargs = dict(nx=12, ranks=4, s=4, restart=12)
    table, artifact = run(**kwargs)
    print(table.render())
    out = Path(args.out)
    path = artifact.write(out / "BENCH_service.json")
    print(f"\nwrote {path}")


if __name__ == "__main__":
    main()
