"""Sketch-stability sweep — two-stage vs sketched-two-stage conditioning.

A condition-number sweep in the spirit of the paper's Fig. 9: feed
synthetic blocks ``V = X Sigma Y.T`` with prescribed ``kappa(V)``
(Section VI's Logscaled construction) panel-by-panel through

* the paper's :class:`~repro.ortho.two_stage.TwoStageScheme` with
  shifted-Cholesky recovery (its most forgiving configuration), and
* the randomized :class:`~repro.ortho.randomized.SketchedTwoStageScheme`
  whose stage passes are sketch-preconditioned via :mod:`repro.sketch`,

and report the final orthogonality / representation error of each.

Expected shape (the Section IX motivation made quantitative): the
classical scheme is O(eps) up to the BCGS-PIP condition cliff
(kappa ~ eps^{-1/2} ~ 1e8), then the stage-1 Pythagorean Cholesky breaks
down outright — even shift escalation gives up.  The sketched scheme
whitens every panel with a sketch-QR factor before any Cholesky sees it
and stays at O(eps) error up to kappa ~ 1e15 ~ 1/eps, the limit of what
double precision can represent at all.  This is the "converges where the
classical scheme stagnates or breaks down" acceptance claim of the
sketching subsystem; the smoke-size variant runs in
``tests/experiments/test_artifacts.py``.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import CholeskyBreakdownError
from repro.experiments.common import ExperimentTable, fmt
from repro.ortho import BlockDriver, get_scheme
from repro.ortho.analysis import orthogonality_error
from repro.utils.rng import default_rng, random_with_condition

#: Condition numbers straddling the classical cliff (~1e8) up to the
#: double-precision rank boundary.
KAPPAS = (1e2, 1e6, 1e10, 1e15)


def run_one(scheme_name: str, v: np.ndarray, s: int,
            big_step: int) -> dict:
    """Drive one scheme over ``v``; returns error metrics and status."""
    scheme = get_scheme(scheme_name)(big_step=big_step, breakdown="shift")
    driver = BlockDriver(scheme, s)
    try:
        res = driver.run(v)
    except CholeskyBreakdownError:
        return {"error": float("inf"), "repr": float("inf"),
                "status": "breakdown"}
    err = orthogonality_error(res.q)
    rep = float(np.linalg.norm(res.q @ res.r - v)
                / np.linalg.norm(v))
    status = "ok" if err < 1e-8 else "stagnated"
    return {"error": err, "repr": rep, "status": status}


def run(n: int = 4000, k: int = 30, s: int = 5,
        kappas: "list | tuple" = KAPPAS, seed: int = 7) -> ExperimentTable:
    """Sweep ``kappa(V)``; one row per condition number."""
    rng = default_rng(seed)
    table = ExperimentTable(
        "sketch_stability",
        f"two-stage vs sketched-two-stage orthogonality over kappa(V) "
        f"(n={n}, k={k}, s={s}, bs={k})",
        headers=["kappa", "two-stage err", "status",
                 "sketched err", "status"])
    for kappa in kappas:
        v = random_with_condition(n, k, kappa, rng)
        plain = run_one("two-stage", v, s, big_step=k)
        sketched = run_one("sketched-two-stage", v, s, big_step=k)
        table.add_row(fmt(kappa), fmt(plain["error"]), plain["status"],
                      fmt(sketched["error"]), sketched["status"])
    table.add_note("classical two-stage runs with breakdown='shift' (its "
                   "most forgiving recovery); the stage-1 Pythagorean "
                   "Cholesky still breaks past kappa ~ 1e8")
    table.add_note("sketched-two-stage whitens every stage pass with a "
                   "sketch-QR preconditioner (repro.sketch): O(eps) error "
                   "up to kappa ~ 1/eps")
    return table


def main(argv: list | None = None) -> None:
    import argparse
    p = argparse.ArgumentParser(description=__doc__)
    p.add_argument("--n", type=int, default=4000)
    p.add_argument("--k", type=int, default=30)
    p.add_argument("--quick", action="store_true")
    args = p.parse_args(argv)
    n = 1500 if args.quick else args.n
    print(run(n=n, k=args.k).render())


if __name__ == "__main__":
    main()
