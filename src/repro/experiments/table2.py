"""Table II — second-step-size (bs) sweep on 4 V100s (Vortex).

Paper setup: 2D Laplace n = 2000^2, s = 5, m = 60, two-stage with
bs in {5, 20, 40, 60}, compared against standard GMRES and the original
s-step GMRES (BCGS2+CholQR2).  Rows: iterations, SpMV, Ortho, Total.

Our reproduction: modeled per-cycle phase times at the paper's exact
problem shape, multiplied by the paper's iteration counts (the workload);
optionally a reduced-scale convergence run measures iteration counts to
confirm their bs-quantization structure.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentTable, fmt, resolve_machine
from repro.experiments.estimator import CycleCostEstimator, ProblemShape
from repro.experiments.paper_data import TABLE2
from repro.krylov.simulation import Simulation
from repro.krylov.sstep_gmres import sstep_gmres
from repro.krylov.gmres import gmres
from repro.matrices.stencil import laplace2d
from repro.ortho.bcgs import BCGS2Scheme
from repro.ortho.two_stage import TwoStageScheme

CONFIGS = ["gmres", "bcgs2", "two_stage_bs5", "two_stage_bs20",
           "two_stage_bs40", "two_stage_bs60"]


def modeled_times(nx: int = 2000, ranks: int = 4, m: int = 60, s: int = 5,
                  machine: str = "vortex") -> dict:
    """Per-config phase seconds per cycle at paper scale."""
    mach = resolve_machine(machine)
    est = CycleCostEstimator(mach, ranks, ProblemShape.stencil2d(nx, 5),
                             m=m, s=s)
    out = {"gmres": est.phase_seconds(est.standard_gmres_cycle()),
           "bcgs2": est.phase_seconds(est.sstep_cycle("bcgs2"))}
    for bs in (5, 20, 40, 60):
        out[f"two_stage_bs{bs}"] = est.phase_seconds(
            est.sstep_cycle("two_stage", bs=bs))
    return out


def measured_iterations(nx: int = 120, ranks: int = 4, m: int = 60,
                        s: int = 5, tol: float = 1e-6,
                        maxiter: int = 60_000) -> dict:
    """Reduced-scale convergence run: iteration counts per config."""
    out = {}
    for key in CONFIGS:
        sim = Simulation(laplace2d(nx), ranks=ranks,
                         machine=resolve_machine("vortex"))
        b = sim.ones_solution_rhs()
        if key == "gmres":
            res = gmres(sim, b, restart=m, tol=tol, maxiter=maxiter)
        else:
            scheme = (BCGS2Scheme() if key == "bcgs2"
                      else TwoStageScheme(big_step=int(key.split("bs")[1])))
            res = sstep_gmres(sim, b, s=s, restart=m, tol=tol,
                              maxiter=maxiter, scheme=scheme)
        out[key] = res.iterations
    return out


def run(nx: int = 2000, ranks: int = 4, m: int = 60, s: int = 5,
        measure_nx: int | None = None) -> ExperimentTable:
    per_cycle = modeled_times(nx=nx, ranks=ranks, m=m, s=s)
    measured = (measured_iterations(nx=measure_nx, m=m, s=s)
                if measure_nx else None)
    table = ExperimentTable(
        "table2",
        f"Two-stage bs sweep: 2D Laplace n={nx}^2 on {ranks} V100 (Vortex)",
        headers=["config", "iters(paper)", "SpMV s", "Ortho s", "Total s",
                 "paper SpMV", "paper Ortho", "paper Total"]
                + (["iters(measured@%d^2)" % measure_nx] if measured else []))
    for key in CONFIGS:
        paper = TABLE2[key]
        cycles = paper["iters"] / m
        ph = per_cycle[key]
        row = [key, paper["iters"],
               fmt(cycles * (ph["spmv"] + ph["precond"])),
               fmt(cycles * ph["ortho"]),
               fmt(cycles * ph["total"]),
               paper["spmv"], paper["ortho"], paper["total"]]
        if measured:
            row.append(measured[key])
        table.add_row(*row)
    table.add_note("modeled seconds = per-cycle cost model x paper "
                   "iteration count; ratios are the reproduction target")
    table.add_note("paper: larger bs monotonically reduces Ortho; best at "
                   "bs = m")
    return table


def main(argv: list | None = None) -> None:
    import argparse
    p = argparse.ArgumentParser(description=__doc__)
    p.add_argument("--nx", type=int, default=2000)
    p.add_argument("--measure-nx", type=int, default=0,
                   help="also run a reduced-scale convergence study")
    p.add_argument("--quick", action="store_true")
    args = p.parse_args(argv)
    measure = args.measure_nx or (64 if args.quick else 0)
    print(run(nx=args.nx, measure_nx=measure or None).render())


if __name__ == "__main__":
    main()
