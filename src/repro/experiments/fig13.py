"""Fig. 13 — preconditioned s-step GMRES (block Jacobi + Gauss-Seidel).

Paper setup: same strong-scaling study as Table III but with the local
Gauss-Seidel preconditioner (block Jacobi with multicolor Gauss-Seidel in
each block) applied at every step of the matrix powers kernel; the paper
plots per-iteration time breakdowns (SpMV+precond / Ortho / rest) with
the orthogonalization and iteration speedups annotated.

Expected shape: the preconditioner adds a communication-free,
SpMV-shaped cost to every step, so the *ortho* speedups of the s-step
variants persist while the *total* speedups shrink relative to the
unpreconditioned Table III — "a similar performance trend".
"""

from __future__ import annotations

from repro.experiments.common import ExperimentTable, fmt, resolve_machine, speedup
from repro.experiments.estimator import (
    CycleCostEstimator,
    PrecondShape,
    ProblemShape,
)

CONFIGS = ["gmres", "bcgs2", "pip2", "two_stage"]


def per_iteration_times(nodes: int, nx: int = 2000, m: int = 60, s: int = 5,
                        sweeps: int = 1, colors: int = 2,
                        machine: str = "summit") -> dict:
    mach = resolve_machine(machine)
    ranks = nodes * mach.ranks_per_node
    est = CycleCostEstimator(
        mach, ranks, ProblemShape.stencil2d(nx, 9), m=m, s=s,
        precond=PrecondShape(sweeps=sweeps, colors=colors))
    out = {}
    for key in CONFIGS:
        if key == "gmres":
            tr = est.standard_gmres_cycle()
        elif key == "two_stage":
            tr = est.sstep_cycle("two_stage", bs=m)
        else:
            tr = est.sstep_cycle(key)
        ph = est.per_iteration(tr)
        out[key] = {"spmv_prec": ph["spmv"] + ph["precond"],
                    "ortho": ph["ortho"], "total": ph["total"]}
    return out


def run(node_counts: list | None = None, nx: int = 2000, m: int = 60,
        s: int = 5) -> ExperimentTable:
    node_counts = node_counts or [1, 2, 4, 8, 16, 32]
    table = ExperimentTable(
        "fig13",
        f"Preconditioned (block-Jacobi/GS) time per iteration, "
        f"2D Laplace n={nx}^2",
        headers=["nodes", "config", "SpMV+prec ms", "Ortho ms", "Total ms",
                 "ortho spdp", "iter spdp"])
    for nodes in node_counts:
        ours = per_iteration_times(nodes, nx=nx, m=m, s=s)
        base = ours["gmres"]
        for key in CONFIGS:
            t = ours[key]
            table.add_row(nodes, key,
                          fmt(t["spmv_prec"] * 1e3), fmt(t["ortho"] * 1e3),
                          fmt(t["total"] * 1e3),
                          speedup(base["ortho"], t["ortho"]),
                          speedup(base["total"], t["total"]))
    table.add_note("paper Fig. 13: same trend as Table III; ortho speedups "
                   "persist, total speedups shrink because the "
                   "preconditioner grows the non-ortho share")
    return table


def main(argv: list | None = None) -> None:
    import argparse
    p = argparse.ArgumentParser(description=__doc__)
    p.add_argument("--nx", type=int, default=2000)
    args = p.parse_args(argv)
    print(run(nx=args.nx).render())


if __name__ == "__main__":
    main()
