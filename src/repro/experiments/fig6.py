"""Fig. 6 — CholQR2 orthogonality error vs. input conditioning.

Paper setup: 1e5-by-5 "Logscaled" matrices (X Sigma Y.T with log-spaced
singular values), kappa swept over decades, ten random seeds; plot the
orthogonality error after the first and second CholQR pass and the
condition number after the first pass.

Expected shape (paper Fig. 6): first-pass error grows as kappa^2 * eps
until kappa ~ eps^{-1/2} (~1e8) where Cholesky breaks down; wherever the
first pass succeeds, the second pass reaches O(eps) (Theorem IV.1).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import CholeskyBreakdownError
from repro.experiments.common import ExperimentTable, fmt
from repro.matrices.synthetic import logscaled_matrix
from repro.ortho.analysis import condition_number, orthogonality_error
from repro.ortho.backend import NumpyBackend
from repro.ortho.cholqr import CholQR
from repro.utils.rng import default_rng


def run(n: int = 100_000, k: int = 5,
        kappas: list | None = None, seeds: int = 10,
        base_seed: int = 0) -> ExperimentTable:
    """Sweep kappa; returns min/avg/max errors across seeds per kappa."""
    if kappas is None:
        kappas = [10.0 ** e for e in range(1, 16)]
    nb = NumpyBackend()
    table = ExperimentTable(
        "fig6", f"CholQR2 on {n}-by-{k} Logscaled matrix",
        headers=["kappa(V)", "err1 min", "err1 avg", "err1 max",
                 "kappa(Q1) avg", "err2 avg", "breakdowns"])
    for kappa in kappas:
        errs1, errs2, conds1 = [], [], []
        breakdowns = 0
        for seed in range(seeds):
            rng = default_rng(base_seed + 1000 * seed + 1)
            v = logscaled_matrix(n, k, kappa, rng)
            q = v.copy()
            try:
                CholQR().factor(nb, q)
            except CholeskyBreakdownError:
                breakdowns += 1
                continue
            errs1.append(orthogonality_error(q))
            conds1.append(condition_number(q))
            try:
                CholQR().factor(nb, q)
                errs2.append(orthogonality_error(q))
            except CholeskyBreakdownError:
                breakdowns += 1
        row = [fmt(kappa)]
        if errs1:
            row += [fmt(min(errs1)), fmt(float(np.mean(errs1))),
                    fmt(max(errs1)), fmt(float(np.mean(conds1)))]
            row += [fmt(float(np.mean(errs2))) if errs2 else "-"]
        else:
            row += ["-", "-", "-", "-", "-"]
        row.append(f"{breakdowns}/{seeds}")
        table.add_row(*row)
    table.add_note(
        "paper: err1 ~ kappa^2*eps, Cholesky breaks near kappa ~ 1e8; "
        "err2 = O(eps) wherever pass 1 succeeds (Theorem IV.1)")
    return table


def main(argv: list | None = None) -> None:
    import argparse
    p = argparse.ArgumentParser(description=__doc__)
    p.add_argument("--n", type=int, default=100_000)
    p.add_argument("--seeds", type=int, default=10)
    p.add_argument("--quick", action="store_true",
                   help="reduced n and seed count")
    args = p.parse_args(argv)
    n = 20_000 if args.quick else args.n
    seeds = 3 if args.quick else args.seeds
    print(run(n=n, seeds=seeds).render())


if __name__ == "__main__":
    main()
