"""Figs. 10-12 — orthogonalization time breakdown per algorithm.

Paper setup: for 2D Laplace n = 2000^2 across 1..32 Summit nodes, break
the orthogonalization time into its kernels: the paper plots
"dot-products" (projection GEMMs + their global reduces), "vector
updates", and the remainder (Cholesky/TRSM/normalization), in seconds
(a) and as fractions (b), for BCGS2+CholQR2 (Fig. 10), BCGS-PIP2
(Fig. 11) and the two-stage approach with bs = m (Fig. 12).

Expected shape: at scale the BCGS2 breakdown becomes dominated by the
reduce-bearing dot-products; BCGS-PIP2 halves that; two-stage removes
most of the remaining reduce time while also shrinking the local GEMM
time through the bs-wide second stage.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentTable, fmt, resolve_machine
from repro.experiments.estimator import CycleCostEstimator, ProblemShape
from repro.experiments.paper_data import TABLE3_ITERS

SCHEMES = {"fig10": "bcgs2", "fig11": "pip2", "fig12": "two_stage"}


def ortho_breakdown(scheme: str, nodes: int, nx: int = 2000, m: int = 60,
                    s: int = 5, machine: str = "summit") -> dict:
    """Ortho-phase kernel seconds for one cycle, scaled to paper iters."""
    mach = resolve_machine(machine)
    est = CycleCostEstimator(mach, nodes * mach.ranks_per_node,
                             ProblemShape.stencil2d(nx, 9), m=m, s=s)
    if scheme == "gmres":
        tr = est.standard_gmres_cycle()
        cycles = TABLE3_ITERS["gmres"] / m
    elif scheme == "two_stage":
        tr = est.sstep_cycle("two_stage", bs=m)
        cycles = TABLE3_ITERS["two_stage"] / m
    else:
        tr = est.sstep_cycle(scheme)
        cycles = TABLE3_ITERS[scheme] / m
    kernels = {k[1]: v * cycles for k, v in tr.by_kernel.items()
               if k[0] == "ortho"}
    dot = kernels.get("dot", 0.0) + kernels.get("allreduce", 0.0)
    update = kernels.get("update", 0.0) + kernels.get("trsm", 0.0)
    other = sum(v for k, v in kernels.items()
                if k not in ("dot", "allreduce", "update", "trsm"))
    total = dot + update + other
    return {"dot": dot, "update": update, "other": other, "total": total,
            "reduce_only": kernels.get("allreduce", 0.0) * 1.0}


def run(figure: str = "fig10", node_counts: list | None = None,
        nx: int = 2000, m: int = 60, s: int = 5) -> ExperimentTable:
    scheme = SCHEMES[figure]
    node_counts = node_counts or [1, 2, 4, 8, 16, 32]
    table = ExperimentTable(
        figure,
        f"Ortho time breakdown [{scheme}] for 2D Laplace n={nx}^2",
        headers=["nodes", "dot s", "update s", "other s", "total s",
                 "dot %", "update %", "reduce-only s"])
    for nodes in node_counts:
        b = ortho_breakdown(scheme, nodes, nx=nx, m=m, s=s)
        table.add_row(nodes, fmt(b["dot"]), fmt(b["update"]),
                      fmt(b["other"]), fmt(b["total"]),
                      f"{100 * b['dot'] / b['total']:.0f}%",
                      f"{100 * b['update'] / b['total']:.0f}%",
                      fmt(b["reduce_only"]))
    table.add_note("'dot' includes the global reduces (paper: "
                   "'dot-products with the global reduces')")
    return table


def run_all(node_counts: list | None = None, **kw) -> list:
    return [run(fig, node_counts=node_counts, **kw) for fig in SCHEMES]


def main(argv: list | None = None) -> None:
    import argparse
    p = argparse.ArgumentParser(description=__doc__)
    p.add_argument("figure", nargs="?", default="all",
                   choices=["fig10", "fig11", "fig12", "all"])
    args = p.parse_args(argv)
    figs = list(SCHEMES) if args.figure == "all" else [args.figure]
    for f in figs:
        print(run(f).render())
        print()


if __name__ == "__main__":
    main()
