"""Fig. 9 — conditioning of MPK-generated bases on SuiteSparse surrogates.

Paper setup: scaled "positive indefinite" matrices (n in 2e5..3e5) from
SuiteSparse; monomial MPK generates the basis, interleaved with the
two-stage pre-processing; track

  (a) kappa([Q, V_{l:j}]) for the *raw* generated vectors (no
      pre-processing of the current big panel — paper Fig. 9a),
  (b) kappa([Q, Qhat_{l:j-1}, v...]) *with* pre-processing (Fig. 9b),
  (c) the final orthogonality error per matrix (Fig. 9c).

Expected shape: without pre-processing the condition number grows
without bound; with pre-processing it stays moderate for all but the
"hard" matrices (HTC_336_4438, Ga41As41H72 — which the paper reports as
violating condition (9)); the final error is O(eps) for all matrices.

Substitution note (DESIGN.md §3): the matrices are offline *surrogates*
matched in size/symmetry/spectrum class, and run at reduced n by default.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import CholeskyBreakdownError
from repro.experiments.common import ExperimentTable, fmt
from repro.matrices.suitesparse import build_surrogate, surrogate
from repro.ortho.analysis import condition_number, orthogonality_error
from repro.ortho.backend import NumpyBackend
from repro.ortho.two_stage import TwoStageScheme
from repro.utils.rng import default_rng

FIG9_MATRICES = ["HTC_336_4438", "Ga41As41H72", "offshore", "stomach",
                 "torso3", "Dubcova3", "ASIC_320ks"]


def _mpk_chain(a, v0: np.ndarray, count: int) -> np.ndarray:
    """Raw monomial chain [v0, A v0, ..., A^count v0]."""
    cols = [v0]
    for _ in range(count):
        cols.append(a @ cols[-1])
    return np.column_stack(cols)


def _normalize_operator(a, iters: int = 20,
                        rng: np.random.Generator | None = None):
    """Scale A to unit spectral norm (power iteration estimate).

    The paper's matrices come out of its column/row scaling well-sized
    for the monomial MPK; our random surrogates need this one extra
    normalization to sit in the same regime (otherwise unnormalized
    30-60-step monomial chains overflow regardless of conditioning —
    a scaling artifact, not the conditioning effect Fig. 9 studies).
    """
    rng = default_rng(rng)
    x = rng.standard_normal(a.shape[0])
    x /= np.linalg.norm(x)
    sigma = 1.0
    for _ in range(iters):
        y = a.T @ (a @ x)
        sigma = np.linalg.norm(y) ** 0.5
        norm_y = np.linalg.norm(y)
        if norm_y == 0.0:
            break
        x = y / norm_y
    return a * (1.0 / max(sigma, 1e-300))


def run_one(name: str, run_n: int = 20_000, m: int = 60, s: int = 5,
            bs: int = 60, seed: int = 9) -> dict:
    """Condition tracking for one matrix; returns summary metrics."""
    rng = default_rng(seed)
    a = build_surrogate(name, run_n=run_n, rng=rng)
    # Surrogate calibration (documented deviation): center the spectrum
    # (subtract the mean diagonal) and normalize to unit spectral radius
    # so the *moderate* surrogates sit in the regime the paper's matrices
    # occupy after its scaling — monomial chains that degrade steadily
    # rather than overflowing from pure magnitude growth.
    import scipy.sparse as sp
    mu = float(a.diagonal().mean())
    a = (a - mu * sp.identity(a.shape[0], format="csr")).tocsr()
    a = _normalize_operator(a, rng=rng)
    n = a.shape[0]
    v0 = rng.standard_normal(n)
    v0 /= np.linalg.norm(v0)

    # (a) raw MPK: condition of the full chain without pre-processing
    raw = _mpk_chain(a, v0, m)
    raw_conds = [condition_number(raw[:, : c + 1])
                 for c in range(s, m + 1, s)]

    # (b)+(c) MPK interleaved with two-stage pre-processing
    nb = NumpyBackend()
    basis = np.zeros((n, m + 1))
    basis[:, 0] = v0
    r = np.zeros((m + 1, m + 1))
    scheme = TwoStageScheme(big_step=bs, breakdown="shift")
    scheme.begin_cycle(nb, basis, r)
    pre_conds: list[float] = []
    lo, hi = 0, s + 1
    broke = False
    while lo < m + 1 and not broke:
        # MPK from current content of column max(lo,1)-1
        for col in range(max(lo, 1), hi):
            basis[:, col] = a @ basis[:, col - 1]
        # Fig. 9b quantity: kappa([Q_{1:l-1}, Qhat_{l:j-1}, v_{1:k}]) —
        # processed prefix plus the RAW just-generated panel
        pre_conds.append(condition_number(basis[:, :hi]))
        try:
            scheme.panel_arrived(lo, hi)
        except CholeskyBreakdownError:
            broke = True
            break
        lo, hi = hi, min(hi + s, m + 1)
    if not broke:
        scheme.finish_cycle()
    err = orthogonality_error(basis[:, : scheme.final_cols]) \
        if scheme.final_cols else float("inf")
    return {
        "name": name,
        "raw_cond_final": raw_conds[-1],
        "raw_cond_mid": raw_conds[len(raw_conds) // 2],
        "pre_cond_max": max(pre_conds) if pre_conds else float("inf"),
        "ortho_error": err,
        "breakdown": broke,
        "hard": surrogate(name).spectrum == "hard",
    }


def run(run_n: int = 20_000, m: int = 60, s: int = 5, bs: int = 60,
        matrices: list | None = None) -> ExperimentTable:
    matrices = matrices if matrices is not None else FIG9_MATRICES
    table = ExperimentTable(
        "fig9", f"MPK basis conditioning on SuiteSparse surrogates "
                f"(run n={run_n}, m={m}, s={s}, bs={bs})",
        headers=["matrix", "class", "kappa raw (m/2)", "kappa raw (m)",
                 "kappa [Q,Qhat,v] max", "final ortho err",
                 "stage-1 breakdown"])
    for name in matrices:
        res = run_one(name, run_n=run_n, m=m, s=s, bs=bs)
        table.add_row(
            name, "hard" if res["hard"] else "moderate",
            fmt(res["raw_cond_mid"]), fmt(res["raw_cond_final"]),
            fmt(res["pre_cond_max"]), fmt(res["ortho_error"]),
            "yes" if res["breakdown"] else "no")
    table.add_note("paper Fig. 9: raw chain conditioning explodes; "
                   "pre-processing keeps it bounded except for the two "
                   "hard matrices; final error O(eps) for all")
    table.add_note("surrogate matrices (offline substitution, DESIGN.md §3)")
    return table


def main(argv: list | None = None) -> None:
    import argparse
    p = argparse.ArgumentParser(description=__doc__)
    p.add_argument("--run-n", type=int, default=20_000)
    p.add_argument("--quick", action="store_true")
    args = p.parse_args(argv)
    run_n = 4000 if args.quick else args.run_n
    print(run(run_n=run_n).render())


if __name__ == "__main__":
    main()
