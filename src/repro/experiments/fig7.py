"""Fig. 7 — one-stage BCGS-PIP2 on glued matrices.

Paper setup: glued matrices where each panel and the overall matrix share
"the same specified order of the condition number" (our glued construction
with growth = 1); sweep that condition number, track (a) the condition
number of the accumulated basis after the first BCGS-PIP pass and (b) the
orthogonality errors after the first and second passes.

Expected shape (paper Fig. 7): for kappa < eps^{-1/2}, first-pass error
~ kappa^2 * eps, accumulated condition stays O(1), second-pass error is
O(eps) — the same error CholQR2/BCGS2 reaches (Theorem IV.2).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import CholeskyBreakdownError
from repro.experiments.common import ExperimentTable, fmt
from repro.matrices.synthetic import glued_matrix
from repro.ortho.analysis import condition_number, orthogonality_error
from repro.ortho.base import BlockDriver
from repro.ortho.bcgs_pip import BCGSPIP2Scheme, BCGSPIPScheme
from repro.utils.rng import default_rng


def run(n: int = 100_000, s: int = 5, n_panels: int = 6,
        kappas: list | None = None, seeds: int = 10,
        base_seed: int = 0) -> ExperimentTable:
    if kappas is None:
        kappas = [10.0 ** e for e in range(1, 13)]
    table = ExperimentTable(
        "fig7", f"one-stage BCGS-PIP2 on glued matrix "
                f"({n}x{s * n_panels}, {n_panels} panels)",
        headers=["kappa(V)", "kappa(Qhat) avg", "err1 avg", "err2 avg",
                 "breakdowns"])
    for kappa in kappas:
        conds, errs1, errs2 = [], [], []
        breakdowns = 0
        for seed in range(seeds):
            rng = default_rng(base_seed + 1000 * seed + 7)
            g = glued_matrix(n, s, n_panels, panel_cond=kappa, growth=1.0,
                             rng=rng)
            try:
                out1 = BlockDriver(BCGSPIPScheme(), s).run(g.matrix)
                conds.append(condition_number(out1.q))
                errs1.append(orthogonality_error(out1.q))
                out2 = BlockDriver(BCGSPIP2Scheme(), s).run(g.matrix)
                errs2.append(orthogonality_error(out2.q))
            except CholeskyBreakdownError:
                breakdowns += 1
        row = [fmt(kappa)]
        if conds:
            row += [fmt(float(np.mean(conds))), fmt(float(np.mean(errs1))),
                    fmt(float(np.mean(errs2)))]
        else:
            row += ["-", "-", "-"]
        row.append(f"{breakdowns}/{seeds}")
        table.add_row(*row)
    table.add_note(
        "paper: err1 ~ kappa^2*eps, kappa(Qhat) = O(1), err2 = O(eps) for "
        "kappa < eps^{-1/2} (Theorem IV.2)")
    return table


def main(argv: list | None = None) -> None:
    import argparse
    p = argparse.ArgumentParser(description=__doc__)
    p.add_argument("--n", type=int, default=100_000)
    p.add_argument("--seeds", type=int, default=10)
    p.add_argument("--quick", action="store_true")
    args = p.parse_args(argv)
    n = 10_000 if args.quick else args.n
    seeds = 3 if args.quick else args.seeds
    print(run(n=n, seeds=seeds).render())


if __name__ == "__main__":
    main()
