"""Randomized-GMRES convergence sweep — sketched vs classical solve.

The sketching subsystem's solver-level acceptance claim (ROADMAP
follow-on "sketch-space least-squares/Hessenberg recovery in
``sstep_gmres``", after arXiv:2503.16717): on Krylov bases so
ill-conditioned that the classical two-stage CholQR pipeline cannot
hold them, the *randomized* solve path —
:class:`~repro.ortho.randomized.SketchedTwoStageScheme` with
single-collective fused stage passes plus
``sstep_gmres(..., options=SolverOptions(solve_mode="sketched"))`` —
still converges, because
neither piece ever relies on explicit l2 orthogonality: the scheme only
whitens through a sketch, and the solver minimizes the small
least-squares problem in sketch space
(:func:`repro.krylov.hessenberg.sketched_least_squares`).

Construction: a log-spaced-spectrum diagonal operator with the monomial
basis and a *large* step size ``s``, so each matrix-powers panel aligns
with the dominant eigenvector and its condition number blows through
``eps^{-1/2} ~ 1e8`` (where the classical stage-1 Pythagorean Cholesky
lives) well past 1e12.  The table reports, per ``(kappa(A), s, m)``
configuration, the measured condition number of the first raw Krylov
panel and both solvers' outcomes.

Expected shape: the classical s-step solver either breaks down cycle
after cycle or — worse — keeps producing garbage checkpoints whose
coordinate least-squares "residual" diverges, while the sketched solver
drives the true relative residual below 1e-8.  The smoke-size variant
is asserted in ``tests/experiments/test_rgs_convergence.py``.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.experiments.common import ExperimentTable, fmt
from repro.krylov.options import SolverOptions
from repro.krylov.simulation import Simulation
from repro.krylov.sstep_gmres import sstep_gmres
from repro.ortho.randomized import SketchedTwoStageScheme
from repro.ortho.two_stage import TwoStageScheme
from repro.parallel.machine import generic_cpu

#: ``(kappa(A), s, restart)`` configurations; every one drives the raw
#: monomial panel condition far beyond 1e12.
CONFIGS = ((30.0, 16, 32), (50.0, 14, 28), (60.0, 15, 30))


def logspec_operator(n: int, kappa: float) -> sp.csr_matrix:
    """Diagonal operator with log-spaced spectrum on ``[1, kappa]``."""
    return sp.diags(np.logspace(0.0, np.log10(kappa), n)).tocsr()


def krylov_panel_cond(a: sp.spmatrix, b: np.ndarray, cols: int) -> float:
    """Condition number of the first raw monomial Krylov panel
    ``[q0, A q0, ..., A^{cols-1} q0]`` (dense, host-side — the quantity
    the ill-conditioned-basis claim is about)."""
    q0 = b / np.linalg.norm(b)
    cols_list = [q0]
    for _ in range(cols - 1):
        cols_list.append(a @ cols_list[-1])
    with np.errstate(over="ignore", invalid="ignore"):
        return float(np.linalg.cond(np.column_stack(cols_list)))


def _status(res, tol: float) -> str:
    if res.converged and res.relative_residual <= tol:
        return "converged"
    if res.stalled:
        return "breakdown"
    if not np.isfinite(res.relative_residual) or res.relative_residual > 1.0:
        return "diverged"
    return "stagnated"


def run_case(kappa: float, s: int, restart: int, *, n: int = 400,
             tol: float = 1e-8, maxiter: int = 1500, ranks: int = 4) -> dict:
    """One configuration: classical vs sketched solve on the same system."""
    a = logspec_operator(n, kappa)
    b = np.asarray(a @ np.ones(n)).ravel()
    basis_cond = krylov_panel_cond(a, b, s + 1)
    with np.errstate(all="ignore"):
        classical = sstep_gmres(
            Simulation(a, ranks=ranks, machine=generic_cpu()), b, s=s,
            restart=restart, tol=tol, maxiter=maxiter,
            scheme=TwoStageScheme(big_step=restart, breakdown="shift"))
        sketched = sstep_gmres(
            Simulation(a, ranks=ranks, machine=generic_cpu()), b, s=s,
            restart=restart, tol=tol, maxiter=maxiter,
            scheme=SketchedTwoStageScheme(big_step=restart, fused=True),
            options=SolverOptions(solve_mode="sketched"))
    return {"kappa": kappa, "s": s, "restart": restart,
            "basis_cond": basis_cond,
            "classical": classical, "sketched": sketched,
            "classical_status": _status(classical, tol),
            "sketched_status": _status(sketched, tol), "tol": tol}


def run(n: int = 400, configs=CONFIGS, tol: float = 1e-8,
        maxiter: int = 1500) -> ExperimentTable:
    """Sweep the configurations; one table row per ``(kappa, s, m)``."""
    table = ExperimentTable(
        "rgs_convergence",
        f"classical vs sketched s-step GMRES solve on ill-conditioned "
        f"monomial bases (n={n}, tol={tol:g})",
        headers=["kappa(A)", "s", "m", "panel cond",
                 "classical", "rel res", "iters",
                 "sketched", "rel res", "iters"])
    for kappa, s, restart in configs:
        case = run_case(kappa, s, restart, n=n, tol=tol, maxiter=maxiter)
        cls, skt = case["classical"], case["sketched"]
        table.add_row(
            fmt(kappa), s, restart, fmt(case["basis_cond"]),
            case["classical_status"], fmt(cls.relative_residual),
            cls.iterations,
            case["sketched_status"], fmt(skt.relative_residual),
            skt.iterations)
    table.add_note("classical = TwoStageScheme(breakdown='shift') + "
                   "coordinate least squares; sketched = fused "
                   "SketchedTwoStageScheme (1 collective per stage pass) "
                   "+ sketch-space least squares (solve_mode='sketched')")
    table.add_note("panel cond = measured condition number of the first "
                   "raw monomial Krylov panel [q0, A q0, ..., A^s q0]")
    table.add_note("every panel cond exceeds 1e12: past the classical "
                   "Pythagorean-Cholesky cliff, inside the sketch-QR "
                   "whitening comfort zone (~1/eps)")
    return table


def main(argv: list | None = None) -> None:
    import argparse
    p = argparse.ArgumentParser(description=__doc__)
    p.add_argument("--n", type=int, default=400)
    p.add_argument("--maxiter", type=int, default=1500)
    p.add_argument("--quick", action="store_true")
    args = p.parse_args(argv)
    n = 250 if args.quick else args.n
    maxiter = 800 if args.quick else args.maxiter
    print(run(n=n, maxiter=maxiter).render())


if __name__ == "__main__":
    main()
