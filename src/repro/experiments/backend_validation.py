"""Predicted vs measured: the mp backend validates the cost model.

Every other experiment in this package reports *modeled* seconds from
the SimComm planner.  This one runs the same solves twice — once on
``backend="sim"`` (modeled time) and once on ``backend="mp"`` (every
rank a real OS process, wall clock measured per phase) — and puts the
two timelines side by side.  Three properties are checked/reported:

1. **Bit identity.**  The mp solution must equal the sim solution
   byte-for-byte (the executor folds reductions in the same
   recursive-doubling pair order the planner models), asserted per
   scheme.
2. **Twin consistency.**  MpComm carries a modeled *twin* tracer fed by
   the exact SimComm charge formulas; its clock must equal the sim
   run's clock exactly — the planner and the executor never drift.
3. **Shape agreement.**  The per-phase breakdown (SpMV / halo /
   panel QR / allreduce) of modeled vs measured time, and the measured
   two-stage vs fused-sketched comparison.  Absolute wall seconds on
   the CI host mean little (Python processes over shared memory are
   not a V100 cluster — latency-type costs are wildly different), so
   the table reports both timelines and their per-phase *shares*; the
   artifact keeps the raw numbers.

Emits ``BENCH_measured.json`` (standard
:class:`~repro.bench.artifacts.BenchArtifact` schema): one record per
scheme, wall-clock stats over ``--repeats`` mp runs, with the modeled
totals and both phase breakdowns attached as extras.  The smoke-size
variant is asserted in ``tests/experiments/test_backend_validation.py``.
"""

from __future__ import annotations

import json

from datetime import datetime, timezone
from pathlib import Path

import numpy as np

from repro.bench.artifacts import (
    BenchArtifact,
    BenchRecord,
    collect_environment,
)
from repro.experiments.common import ExperimentTable, fmt
from repro.krylov.options import SolverOptions
from repro.krylov.simulation import Simulation
from repro.krylov.sstep_gmres import sstep_gmres
from repro.obs.drift import DEFAULT_DRIFT_BOUND, drift_report
from repro.obs.export import chrome_trace_doc
from repro.matrices.stencil import laplace2d
from repro.ortho.randomized import SketchedTwoStageScheme
from repro.ortho.two_stage import TwoStageScheme

#: The paper's contribution vs its randomized sibling — the two schemes
#: whose communication profiles the measured backend must reproduce.
SCHEMES = ("two-stage", "fused-sketched")

#: Reported phase buckets, and how tracer kernels map onto them.
PHASE_BUCKETS = ("spmv", "halo", "panel_qr", "allreduce")


def _scheme_setup(name: str, restart: int):
    """(scheme instance, SolverOptions) for one validated configuration."""
    if name == "two-stage":
        return TwoStageScheme(restart), SolverOptions()
    if name == "fused-sketched":
        return (SketchedTwoStageScheme(restart, fused=True),
                SolverOptions(solve_mode="sketched"))
    raise ValueError(f"unknown scheme {name!r}; expected one of {SCHEMES}")


def phase_breakdown(totals) -> dict:
    """Fold a tracer snapshot into the SpMV/halo/panel-QR/allreduce view.

    ``panel_qr`` is the ortho phase net of its reductions — the local
    Gram/update/factorization work of the orthogonalization schemes;
    ``allreduce`` aggregates reductions across *all* phases (they are
    the synchronizations the s-step formulation exists to amortize).
    """
    by_kernel = totals.by_kernel
    spmv = sum(v for (ph, k), v in by_kernel.items() if k == "spmv_local")
    halo = sum(v for (ph, k), v in by_kernel.items() if k == "halo")
    allred = sum(v for (ph, k), v in by_kernel.items() if k == "allreduce")
    ortho_allred = sum(v for (ph, k), v in by_kernel.items()
                       if k == "allreduce" and ph == "ortho")
    panel_qr = max(totals.by_phase.get("ortho", 0.0) - ortho_allred, 0.0)
    return {"spmv": spmv, "halo": halo, "panel_qr": panel_qr,
            "allreduce": allred, "total": totals.clock}


def run_scheme(scheme_name: str, *, nx: int, ranks: int, s: int,
               restart: int, tol: float, maxiter: int,
               repeats: int) -> dict:
    """Validate one scheme: sim prediction + ``repeats`` measured runs."""
    a = laplace2d(nx)
    b = np.ones(a.shape[0])

    scheme, options = _scheme_setup(scheme_name, restart)
    with Simulation(a, ranks=ranks, backend="sim") as sim:
        snap = sim.tracer.snapshot()
        res_sim = sstep_gmres(sim, b, s=s, restart=restart, tol=tol,
                              maxiter=maxiter, scheme=scheme,
                              options=options)
        predicted = phase_breakdown(sim.tracer.since(snap))

    measured_runs = []
    modeled_clock = None
    modeled_totals = None
    measured_totals = None
    res_mp = None
    drift = None
    trace_doc = None
    for _ in range(max(repeats, 1)):
        scheme, options = _scheme_setup(scheme_name, restart)
        with Simulation(a, ranks=ranks, backend="mp", spans=True) as mp_sim:
            snap = mp_sim.tracer.snapshot()
            twin_snap = mp_sim.comm.modeled.snapshot()
            res_mp = sstep_gmres(mp_sim, b, s=s, restart=restart, tol=tol,
                                 maxiter=maxiter, scheme=scheme,
                                 options=options)
            measured_runs.append(
                phase_breakdown(mp_sim.tracer.since(snap)))
            modeled_totals = mp_sim.comm.modeled.since(twin_snap)
            measured_totals = mp_sim.tracer.since(snap)
            modeled_clock = modeled_totals.clock
            # drift + trace from the last repeat: span streams cover
            # the whole communicator lifetime, totals just the solve
            drift = drift_report(modeled_totals, measured_totals,
                                 modeled_spans=mp_sim.comm.modeled.spans,
                                 measured_spans=mp_sim.tracer.spans)
            trace_doc = chrome_trace_doc(mp_sim.comm.modeled,
                                         mp_sim.tracer)

        if res_mp.x.tobytes() != res_sim.x.tobytes():
            raise AssertionError(
                f"{scheme_name}: backend='mp' solution diverged from "
                f"backend='sim' — the executor broke the planner's "
                f"reduction order")
    if modeled_clock != predicted["total"]:
        raise AssertionError(
            f"{scheme_name}: MpComm's modeled twin charged "
            f"{modeled_clock!r}s but SimComm predicted "
            f"{predicted['total']!r}s — the charge formulas drifted")

    walls = [m["total"] for m in measured_runs]
    best = measured_runs[int(np.argmin(walls))]
    return {
        "scheme": scheme_name,
        "result": res_mp,
        "predicted": predicted,
        "measured": best,
        "measured_runs": measured_runs,
        "walls": walls,
        "modeled_totals": modeled_totals,
        "measured_totals": measured_totals,
        "drift": drift,
        "trace_doc": trace_doc,
    }


def run(nx: int = 40, ranks: int = 4, s: int = 5, restart: int = 30,
        tol: float = 1.0e-8, maxiter: int = 4000, repeats: int = 3,
        schemes=SCHEMES, trace_dir=None,
        drift_bound: float | None = DEFAULT_DRIFT_BOUND
        ) -> tuple[ExperimentTable, BenchArtifact]:
    """Validate every scheme; returns (table, BENCH_measured artifact).

    Every record's extras carry the full modeled/measured tracer totals
    (:meth:`TraceTotals.to_dict`) and a ``drift`` section from
    :func:`repro.obs.drift.drift_report`; when ``drift_bound`` is set
    (default :data:`~repro.obs.drift.DEFAULT_DRIFT_BOUND`) the worst
    per-phase share drift is asserted below it — the nightly model-vs-
    measurement gate.  With ``trace_dir``, a Chrome trace-event file
    ``trace_<scheme>.json`` (modeled + measured tracks, per-rank lanes)
    is written per scheme.
    """
    table = ExperimentTable(
        "backend_validation",
        f"predicted (sim) vs measured (mp) wall clock per phase "
        f"(laplace2d({nx}), p={ranks}, s={s}, m={restart}, "
        f"min of {repeats} runs)",
        headers=["scheme", "timeline", "SpMV", "halo", "panel QR",
                 "allreduce", "total s"])
    records = []
    for name in schemes:
        out = run_scheme(name, nx=nx, ranks=ranks, s=s, restart=restart,
                         tol=tol, maxiter=maxiter, repeats=repeats)
        for label, bd in (("modeled", out["predicted"]),
                          ("measured", out["measured"])):
            shares = {k: (bd[k] / bd["total"] if bd["total"] > 0 else 0.0)
                      for k in PHASE_BUCKETS}
            table.add_row(
                name, label,
                *(f"{shares[k]:.1%}" for k in PHASE_BUCKETS),
                fmt(bd["total"]))
        walls = out["walls"]
        res = out["result"]
        drift = out["drift"]
        if drift_bound is not None and not drift.within(drift_bound):
            raise AssertionError(
                f"{name}: predicted-vs-measured share drift "
                f"{drift.max_share_drift:.3f} exceeds the configured "
                f"bound {drift_bound} —\n{drift.summary()}")
        if trace_dir is not None:
            trace_path = Path(trace_dir) / f"trace_{name}.json"
            trace_path.parent.mkdir(parents=True, exist_ok=True)
            trace_path.write_text(json.dumps(out["trace_doc"]) + "\n")
        records.append(BenchRecord(
            name=f"backend_validation[{name}]",
            group="backend_validation",
            mean=float(np.mean(walls)),
            min=float(np.min(walls)),
            median=float(np.median(walls)),
            stddev=float(np.std(walls)),
            rounds=len(walls),
            iterations=1,
            extra={
                "scheme": name,
                "ranks": ranks, "nx": nx, "s": s, "restart": restart,
                "solver_iterations": res.iterations,
                "converged": res.converged,
                "bit_identical": True,
                "modeled": out["predicted"],
                "measured": out["measured"],
                "modeled_totals": out["modeled_totals"].to_dict(),
                "measured_totals": out["measured_totals"].to_dict(),
                "drift": drift.to_dict(),
            }))
    table.add_note("solutions are bit-identical across backends and the "
                   "mp modeled twin equals the sim prediction exactly "
                   "(both asserted per scheme)")
    table.add_note("phase cells are shares of the row's total; modeled "
                   "totals are V100-cluster seconds, measured totals are "
                   "Python-process wall clock on this host — compare "
                   "shapes, not magnitudes")
    table.add_note("panel QR = ortho phase net of reductions; allreduce "
                   "aggregates reductions across all phases")
    table.add_note("each artifact record carries a per-phase drift "
                   "section (share drift between the modeled twin and "
                   "the measured timeline)"
                   + (f"; worst drift gated < {drift_bound}"
                      if drift_bound is not None else ""))
    artifact = BenchArtifact(
        name="measured",
        created_utc=datetime.now(timezone.utc).isoformat(timespec="seconds"),
        environment=collect_environment(),
        benchmarks=records)
    return table, artifact


def main(argv: list | None = None) -> None:
    import argparse
    p = argparse.ArgumentParser(description=__doc__)
    p.add_argument("--nx", type=int, default=40)
    p.add_argument("--ranks", type=int, default=4)
    p.add_argument("--s", type=int, default=5)
    p.add_argument("--restart", type=int, default=30)
    p.add_argument("--repeats", type=int, default=3)
    p.add_argument("--out", default=".",
                   help="directory for BENCH_measured.json and the "
                        "Chrome trace files")
    p.add_argument("--quick", action="store_true")
    args = p.parse_args(argv)
    nx = 24 if args.quick else args.nx
    restart = 12 if args.quick else args.restart
    s = min(args.s, restart)
    repeats = 1 if args.quick else args.repeats
    table, artifact = run(nx=nx, ranks=args.ranks, s=s, restart=restart,
                          repeats=repeats, trace_dir=args.out)
    print(table.render())
    path = artifact.write(Path(args.out) / "BENCH_measured.json")
    print(f"\nwrote {path}")


if __name__ == "__main__":
    main()
