"""Precision-stability sweep — storage precision x scheme, plus GMRES-IR.

Two questions, two tables:

**Orthogonalization** (:func:`run_ortho`): feed synthetic panels of
prescribed ``kappa(V)`` through the two-stage scheme on the
*distributed* backend under different precision configurations —

* fp64 storage, fp64 Gram  (the classical baseline, shift recovery);
* fp64 storage, dd Gram    (:class:`MixedPrecisionTwoStageScheme`);
* fp32 storage, fp64 Gram  (half the panel bytes, fp64-accumulated
  reductions — the storage-vs-accumulate trade of arXiv:2409.03079);
* fp32 storage, fp32 Gram  (the degraded control: Gram rounded through
  fp32 before factorization).

Expected shape: the storage precision sets the attainable orthogonality
*floor* (``~eps_fp64`` vs ``~eps_fp32``), while the Gram precision sets
the breakdown *cliff*: fp32 Gram dies around ``kappa ~ eps_fp32^-1/2 ~
1e3-1e4``, fp64 Gram around ``eps_fp64^-1/2 ~ 1e8``, and the dd Gram
buys about a decade past that (the prefix-orthogonality error of the
computed basis — not arithmetic — is the remaining O(eps) floor in the
Pythagorean subtraction; the route to ``kappa ~ 1/eps`` remains the
sketched schemes of ``experiments/sketch_stability.py``).

**Solver / GMRES-IR** (:func:`run_ir`): on 2-D Laplacians, compare
direct fp64 s-step GMRES, direct low-precision solves, and
:func:`repro.krylov.ir.gmres_ir` wrapping the low-precision solve in an
fp64 refinement loop.  The acceptance claim: **GMRES-IR with fp32 (and
even bf16) storage converges to fp64-level true backward error**, while
every orthogonalization kernel streams half (quarter) the bytes.  The
smoke-size variant is asserted in
``tests/experiments/test_precision_stability.py``.
"""

from __future__ import annotations

import numpy as np

from repro.distla.multivector import DistMultiVector
from repro.exceptions import CholeskyBreakdownError
from repro.experiments.common import ExperimentTable, fmt
from repro.krylov.ir import gmres_ir
from repro.krylov.options import SolverOptions
from repro.krylov.simulation import Simulation
from repro.krylov.sstep_gmres import sstep_gmres
from repro.matrices.stencil import laplace2d
from repro.ortho.analysis import orthogonality_error
from repro.ortho.backend import DistBackend
from repro.ortho.registry import get_scheme
from repro.parallel.communicator import SimComm
from repro.parallel.machine import generic_cpu
from repro.parallel.partition import Partition
from repro.parallel.tracing import Tracer
from repro.utils.rng import default_rng, random_with_condition

#: Condition numbers straddling the fp32-Gram cliff (~1e3), the fp64
#: Gram cliff (~1e8) and the dd-Gram headroom past it.
KAPPAS = (1e2, 1e6, 1e9)

#: (label, storage spec, scheme factory kwargs) per configuration.
CONFIGS = (
    ("fp64/fp64-gram", "fp64", {"gram": "fp64"}),
    ("fp64/dd-gram", "fp64", {"gram": "dd"}),
    ("fp32/fp64-gram", "fp32", {"gram": "fp64"}),
    ("fp32/fp32-gram", "fp32", {"gram": "fp32"}),
)


def drive_distributed(scheme, v: np.ndarray, s: int, *, ranks: int = 4,
                      storage: str = "fp64") -> dict:
    """Feed ``v`` panel-by-panel through ``scheme`` on the distributed
    backend with the requested storage precision; returns error metrics.

    The distributed twin of :class:`repro.ortho.base.BlockDriver`: the
    basis lives in a :class:`DistMultiVector` whose storage spec decides
    both the container dtype and the charged word size; errors are
    measured on the fp64 gather.
    """
    n, k = v.shape
    comm = SimComm(generic_cpu(), ranks, Tracer())
    part = Partition(n, ranks)
    dv = DistMultiVector.from_global(v, part, comm, storage=storage)
    backend = DistBackend(comm)
    r = np.zeros((k, k))
    try:
        scheme.begin_cycle(backend, dv, r)
        for lo in range(0, k, s):
            scheme.panel_arrived(lo, min(lo + s, k))
        scheme.finish_cycle()
    except CholeskyBreakdownError:
        return {"error": float("inf"), "repr": float("inf"),
                "status": "breakdown", "ortho_seconds": comm.tracer.clock}
    q = dv.to_global().astype(np.float64)
    err = orthogonality_error(q)
    rep = float(np.linalg.norm(q @ np.triu(r) - v) / np.linalg.norm(v))
    # the attainable floor scales with the storage precision
    floor = 1e-8 if storage == "fp64" else 1e-3
    status = "ok" if err < floor else "stagnated"
    return {"error": err, "repr": rep, "status": status,
            "ortho_seconds": comm.tracer.clock}


def run_ortho(n: int = 4000, k: int = 30, s: int = 5,
              kappas=KAPPAS, seed: int = 11) -> ExperimentTable:
    """Storage x Gram precision sweep over ``kappa(V)``."""
    rng = default_rng(seed)
    table = ExperimentTable(
        "precision_stability_ortho",
        f"two-stage orthogonality by storage/Gram precision over kappa(V) "
        f"(n={n}, k={k}, s={s}, bs={k})",
        headers=["kappa"] + [f"{label}" for label, _, _ in CONFIGS])
    for kappa in kappas:
        v = random_with_condition(n, k, kappa, rng)
        cells = [fmt(kappa)]
        for _, storage, kw in CONFIGS:
            scheme = get_scheme("mixed-two-stage")(
                big_step=k, breakdown="shift", **kw)
            res = drive_distributed(scheme, v, s, storage=storage)
            cells.append(f"{fmt(res['error'])} ({res['status']})")
        table.add_row(*cells)
    table.add_note("all configurations run the two-stage state machine "
                   "with shift recovery; gram=fp64 reduces to the "
                   "classical scheme")
    table.add_note("storage precision sets the error floor (~eps of the "
                   "storage) AND caps the cliff: fp32-stored prefixes "
                   "hold orthogonality only to eps_fp32, so their "
                   "Pythagorean subtraction dies by kappa ~ 1e6 "
                   "whatever the Gram precision")
    table.add_note("at fp64 storage the Gram precision sets the cliff: "
                   "fp64 ~1e8, dd roughly a decade past it; the route "
                   "to kappa ~ 1/eps remains the sketched schemes "
                   "(see sketch_stability)")
    return table


#: Solver configurations: (label, precision policy, use_ir).
IR_CONFIGS = (
    ("fp64 direct", "fp64", False),
    ("fp32 direct", "fp32", False),
    ("fp32 GMRES-IR", "fp32", True),
    ("bf16 direct", "bf16", False),
    ("bf16 GMRES-IR", "bf16", True),
)


def run_ir(nx: int = 32, *, s: int = 5, restart: int = 30,
           tol: float = 1e-12, ranks: int = 8,
           maxiter: int = 20_000) -> ExperimentTable:
    """Direct low-precision solves vs GMRES-IR on a 2-D Laplacian."""
    a = laplace2d(nx)
    table = ExperimentTable(
        "precision_stability_ir",
        f"s-step GMRES vs GMRES-IR by storage precision "
        f"(laplace2d({nx}), n={nx * nx}, s={s}, m={restart}, tol={tol:g})",
        headers=["config", "status", "true rel res", "iters",
                 "refinements", "ortho s"])
    b = None
    for label, precision, use_ir in IR_CONFIGS:
        sim = Simulation(a, ranks=ranks, machine=generic_cpu())
        if b is None:
            b = sim.ones_solution_rhs()
        if use_ir:
            res = gmres_ir(sim, b, precision=precision, tol=tol, s=s,
                           restart=restart, inner_maxiter=maxiter)
            refinements = res.diagnostics["refinements"]
        else:
            res = sstep_gmres(sim, b, s=s, restart=restart, tol=tol,
                              maxiter=maxiter,
                              options=SolverOptions(precision=precision))
            refinements = "-"
        true_res = float(np.linalg.norm(b - a @ res.x) / np.linalg.norm(b))
        status = "converged" if res.converged else (
            "stalled" if res.stalled else "maxiter")
        table.add_row(label, status, fmt(true_res), res.iterations,
                      refinements, f"{res.ortho_time:.4f}")
    table.add_note("true rel res = fp64 ||b - A x|| / ||b|| recomputed "
                   "on the host (the backward-error acceptance metric)")
    table.add_note("GMRES-IR: fp64 outer residual/correction around the "
                   "low-precision inner solve; fp32 storage reaches "
                   "fp64-level backward error, charged at half the "
                   "panel bytes")
    return table


def run(n: int = 4000, k: int = 30, nx: int = 32,
        maxiter: int = 20_000) -> list[ExperimentTable]:
    """Both sweeps, in presentation order."""
    return [run_ortho(n=n, k=k), run_ir(nx=nx, maxiter=maxiter)]


def main(argv: list | None = None) -> None:
    import argparse
    p = argparse.ArgumentParser(description=__doc__)
    p.add_argument("--n", type=int, default=4000)
    p.add_argument("--k", type=int, default=30)
    p.add_argument("--nx", type=int, default=32)
    p.add_argument("--quick", action="store_true")
    args = p.parse_args(argv)
    n = 1500 if args.quick else args.n
    nx = 20 if args.quick else args.nx
    maxiter = 3000 if args.quick else 20_000
    for table in run(n=n, k=args.k, nx=nx, maxiter=maxiter):
        print(table.render(), "\n")


if __name__ == "__main__":
    main()
