"""Machine-readable benchmark artifacts.

A :class:`BenchArtifact` is the JSON document a benchmark session leaves
behind (``BENCH_<name>.json``): per-benchmark wall-clock statistics from
pytest-benchmark, any extra info the benchmark attached (for this library
typically the *modeled* seconds charged by the cost model, so modeled vs.
wall time can be tracked together), and enough environment metadata to
interpret a diff.  ``benchmarks/conftest.py`` emits one artifact per
benchmark module at session end; ``scripts/compare_bench.py`` diffs two
artifacts and enforces regression/speedup gates in CI.

The schema is deliberately flat and versioned (:data:`SCHEMA`); loaders
reject documents from a different major schema so CI fails loudly instead
of comparing apples to oranges.
"""

from __future__ import annotations

import json
import platform
import sys
from dataclasses import asdict, dataclass, field
from datetime import datetime, timezone
from pathlib import Path

#: Current artifact schema identifier (bump the trailing int on breaking
#: layout changes).
SCHEMA = "repro-bench-artifact/1"


@dataclass
class BenchRecord:
    """Wall-clock statistics of one benchmark, plus attached extras."""

    name: str
    group: str | None
    mean: float
    min: float
    median: float
    stddev: float
    rounds: int
    iterations: int
    extra: dict = field(default_factory=dict)


@dataclass
class BenchArtifact:
    """One benchmark module's results: records + environment metadata."""

    name: str
    created_utc: str
    environment: dict
    benchmarks: list[BenchRecord]
    schema: str = SCHEMA

    # ------------------------------------------------------------------
    def record(self, name: str) -> BenchRecord:
        """Record with exactly this benchmark name (KeyError if absent)."""
        for rec in self.benchmarks:
            if rec.name == name:
                return rec
        raise KeyError(f"benchmark {name!r} not in artifact {self.name!r}")

    def names(self) -> list[str]:
        return [rec.name for rec in self.benchmarks]

    def speedup(self, slow_name: str, fast_name: str) -> float:
        """Wall-time ratio ``slow / fast`` (min-of-rounds; robust to
        scheduler noise, which inflates means but rarely deflates mins)."""
        return self.record(slow_name).min / self.record(fast_name).min

    # ------------------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(asdict(self), indent=2, sort_keys=False) + "\n"

    def write(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json())
        return path


def load_artifact(path: str | Path) -> BenchArtifact:
    """Load and schema-check a ``BENCH_*.json`` document."""
    doc = json.loads(Path(path).read_text())
    schema = doc.get("schema", "<missing>")
    if schema != SCHEMA:
        raise ValueError(
            f"{path}: schema {schema!r} does not match expected {SCHEMA!r}")
    records = [BenchRecord(**rec) for rec in doc["benchmarks"]]
    return BenchArtifact(name=doc["name"], created_utc=doc["created_utc"],
                         environment=doc["environment"], benchmarks=records)


# ---------------------------------------------------------------------------
# construction
# ---------------------------------------------------------------------------

def collect_environment() -> dict:
    """Interpreter/library/platform metadata stamped into every artifact."""
    import numpy
    import scipy

    from repro import config
    from repro._version import __version__

    return {
        "repro": __version__,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "numpy": numpy.__version__,
        "scipy": scipy.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "default_engine": config.get_engine(),
        "argv": " ".join(sys.argv[:4]),
    }


def from_pytest_benchmarks(name: str, benchmarks) -> BenchArtifact:
    """Build an artifact from pytest-benchmark's session benchmark list.

    ``benchmarks`` holds the fixture's ``BenchmarkStats`` objects (the
    ``config._benchmarksession.benchmarks`` list); only their public
    ``name``/``group``/``stats``/``extra_info`` attributes are read.
    """
    records = []
    for bench in benchmarks:
        stats = bench.stats
        records.append(BenchRecord(
            name=bench.name,
            group=bench.group,
            mean=float(stats.mean),
            min=float(stats.min),
            median=float(stats.median),
            stddev=float(stats.stddev),
            rounds=int(stats.rounds),
            iterations=int(getattr(bench, "iterations", 1) or 1),
            extra=dict(bench.extra_info or {}),
        ))
    return BenchArtifact(
        name=name,
        created_utc=datetime.now(timezone.utc).isoformat(timespec="seconds"),
        environment=collect_environment(),
        benchmarks=records,
    )


# ---------------------------------------------------------------------------
# comparison
# ---------------------------------------------------------------------------

@dataclass
class Regression:
    """One benchmark that got slower than the allowed threshold."""

    name: str
    baseline_seconds: float
    current_seconds: float

    @property
    def ratio(self) -> float:
        return self.current_seconds / self.baseline_seconds

    def __str__(self) -> str:
        return (f"{self.name}: {self.baseline_seconds:.6g}s -> "
                f"{self.current_seconds:.6g}s ({self.ratio:.2f}x)")


def compare_artifacts(baseline: BenchArtifact, current: BenchArtifact,
                      threshold: float = 0.20) -> list[Regression]:
    """Benchmarks (matched by name) slower than ``baseline * (1+threshold)``.

    Only names present in both artifacts are compared — adding or removing
    benchmarks is not a regression.  Min-of-rounds wall time is used for
    the same noise-robustness reason as :meth:`BenchArtifact.speedup`.
    """
    current_names = set(current.names())
    regressions = []
    for rec in baseline.benchmarks:
        if rec.name not in current_names:
            continue
        cur = current.record(rec.name)
        if cur.min > rec.min * (1.0 + threshold):
            regressions.append(Regression(rec.name, rec.min, cur.min))
    return regressions
