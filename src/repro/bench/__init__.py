"""Machine-readable benchmark artifacts (``BENCH_<name>.json``).

:mod:`repro.bench.artifacts` turns pytest-benchmark sessions into small
JSON documents that CI uploads, diffs across runs, and gates merges on —
see ``scripts/compare_bench.py`` and ``.github/workflows/ci.yml``.
"""

from repro.bench.artifacts import (
    BenchArtifact,
    BenchRecord,
    collect_environment,
    compare_artifacts,
    from_pytest_benchmarks,
    load_artifact,
)

__all__ = [
    "BenchArtifact",
    "BenchRecord",
    "collect_environment",
    "compare_artifacts",
    "from_pytest_benchmarks",
    "load_artifact",
]
