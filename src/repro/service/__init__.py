"""Solver-as-a-service front end.

:mod:`repro.service.queue` batches independent solve requests against a
shared operator into panelized multi-RHS dispatches of
:func:`repro.krylov.block.block_sstep_gmres` — the service-level
expression of the paper's thesis that amortizing collective latency,
not saving flops, is what buys throughput at scale.
"""

from repro.service.queue import SolveQueue, SolveRequest

__all__ = ["SolveQueue", "SolveRequest"]
