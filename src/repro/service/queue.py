"""Request-batching solve front end: :class:`SolveQueue`.

A solver-as-a-service deployment receives independent solve requests —
different right-hand sides, tolerances, deadlines — against a shared
operator.  Running them back to back pays every cycle's collective
latency once *per request*; the paper's whole argument is that this
latency, not flops, is the scale bottleneck.  :class:`SolveQueue` is
the batching front end over :func:`repro.krylov.block.block_sstep_gmres`
that fixes this: compatible pending requests (same matrix/partition —
the bound :class:`~repro.krylov.simulation.Simulation` — and same
``s``/``restart``/basis/scheme/preconditioner/precision options) group
into one panelized multi-RHS batch, so a width-``b`` dispatch pays one
collective per barrier instead of ``b``.

Batching changes *when* requests run, never *what* they compute: each
member of a dispatched batch is bit-identical to an independent
:func:`~repro.krylov.sstep_gmres.sstep_gmres` call, and per-request
``tol``/``maxiter`` ride through to the block solver's per-member
convergence exits.

The dispatch policy is the classic max-width/max-wait pair:

* ``max_width`` — a compatibility group reaching this many pending
  requests dispatches immediately (full panels are the throughput
  sweet spot; wider panels grow payload bytes but not collective
  count).
* ``max_wait`` — :meth:`SolveQueue.pump` also dispatches a partial
  group whose *oldest* request has waited at least this long, bounding
  latency for sparse traffic.  Time is the logical clock of the bound
  simulation's tracer (modeled seconds) unless an explicit ``now`` is
  passed to :meth:`submit`/:meth:`pump`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config import DEFAULT_RESTART, DEFAULT_STEP_SIZE, DEFAULT_TOL
from repro.exceptions import ConfigurationError, ShapeError
from repro.krylov.block import block_sstep_gmres
from repro.krylov.options import SolverOptions
from repro.krylov.result import SolveResult
from repro.krylov.simulation import Simulation


@dataclass
class SolveRequest:
    """One pending solve: the RHS plus its per-request knobs."""

    request_id: int
    b: np.ndarray
    x0: np.ndarray | None
    tol: float
    maxiter: int
    submitted_at: float
    #: Compatibility key — requests batch together iff keys are equal.
    key: tuple = field(repr=False)


def _solver_key(s, restart, basis, scheme_factory, precond, options):
    """Hashable compatibility key for one solver configuration.

    Structural knobs hash by value; stateful objects (a scheme factory,
    a preconditioner instance, a basis object) by identity — two
    requests share a batch only when they share the *same* instances,
    which is the safe reading of "compatible".
    """
    if options is not None:
        try:
            opt_key = hash(options)
        except TypeError:
            opt_key = id(options)
    else:
        opt_key = None
    return (int(s), int(restart),
            basis if isinstance(basis, str) else id(basis),
            None if scheme_factory is None else id(scheme_factory),
            None if precond is None else id(precond),
            opt_key)


class SolveQueue:
    """Group compatible solve requests into panelized batches.

    Parameters
    ----------
    sim:
        The simulation every request solves against (one matrix, one
        partition, one machine — the service's tenancy boundary).
    max_width:
        Dispatch a compatibility group as soon as it holds this many
        requests; also the widest batch a single dispatch produces
        (a larger backlog drains as consecutive full batches).
    max_wait:
        :meth:`pump` dispatches a partial group once its oldest request
        has waited at least this long (modeled seconds).  The default
        ``0.0`` means every ``pump`` drains all pending work — callers
        wanting accumulation pass a positive window.
    s / restart / basis / scheme_factory / precond / options:
        Queue-level solver defaults; :meth:`submit` may override any of
        them per request, and the override participates in the
        compatibility key.
    """

    def __init__(self, sim: Simulation, *, max_width: int = 8,
                 max_wait: float = 0.0,
                 s: int = DEFAULT_STEP_SIZE, restart: int = DEFAULT_RESTART,
                 basis="monomial", scheme_factory=None, precond=None,
                 options: SolverOptions | None = None) -> None:
        if max_width < 1:
            raise ConfigurationError(f"max_width must be >= 1, got {max_width}")
        if max_wait < 0.0:
            raise ConfigurationError(f"max_wait must be >= 0, got {max_wait}")
        self.sim = sim
        self.max_width = int(max_width)
        self.max_wait = float(max_wait)
        self.defaults = dict(s=s, restart=restart, basis=basis,
                             scheme_factory=scheme_factory, precond=precond,
                             options=options)
        self._next_id = 0
        #: pending requests per compatibility key, FIFO within a key
        self._pending: dict[tuple, list[SolveRequest]] = {}
        #: solver arguments per key (shared by every request under it)
        self._configs: dict[tuple, dict] = {}
        self._results: dict[int, SolveResult] = {}
        #: width of every dispatched batch, in dispatch order
        self.dispatched_widths: list[int] = []

    # ------------------------------------------------------------------
    def _now(self, now: float | None) -> float:
        return float(self.sim.tracer.clock) if now is None else float(now)

    def submit(self, b, x0=None, *, tol: float = DEFAULT_TOL,
               maxiter: int = 100_000, now: float | None = None,
               **overrides) -> int:
        """Enqueue one solve request; returns its request id.

        ``tol``/``maxiter`` are per-request (they never fragment a
        batch — the block solver tests convergence per member).  Any
        of ``s``/``restart``/``basis``/``scheme_factory``/``precond``/
        ``options`` may be overridden per request and becomes part of
        the compatibility key.  Submission never dispatches; call
        :meth:`pump` (or :meth:`flush`) to run batches.
        """
        unknown = set(overrides) - set(self.defaults)
        if unknown:
            raise ConfigurationError(
                f"unknown solver override(s) {sorted(unknown)}; expected "
                f"among {sorted(self.defaults)}")
        cfg = {**self.defaults, **overrides}
        b = np.asarray(b, dtype=np.float64).ravel()
        if b.shape != (self.sim.n,):
            raise ShapeError(
                f"request RHS must have {self.sim.n} entries, got {b.shape}")
        if x0 is not None:
            x0 = np.asarray(x0, dtype=np.float64).ravel()
            if x0.shape != (self.sim.n,):
                raise ShapeError(
                    f"request x0 must have {self.sim.n} entries, "
                    f"got {x0.shape}")
        key = _solver_key(cfg["s"], cfg["restart"], cfg["basis"],
                          cfg["scheme_factory"], cfg["precond"],
                          cfg["options"])
        rid = self._next_id
        self._next_id += 1
        req = SolveRequest(request_id=rid, b=b, x0=x0, tol=float(tol),
                           maxiter=int(maxiter),
                           submitted_at=self._now(now), key=key)
        self._pending.setdefault(key, []).append(req)
        self._configs.setdefault(key, cfg)
        return rid

    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of requests waiting for dispatch."""
        return sum(len(reqs) for reqs in self._pending.values())

    def done(self, request_id: int) -> bool:
        return request_id in self._results

    def result(self, request_id: int) -> SolveResult:
        """The finished request's :class:`SolveResult` (raises
        :class:`KeyError` while it is still pending)."""
        try:
            return self._results[request_id]
        except KeyError:
            raise KeyError(
                f"request {request_id} has no result yet — still pending? "
                f"(pump() or flush() dispatches)") from None

    # ------------------------------------------------------------------
    def _dispatch(self, key: tuple, reqs: list[SolveRequest]) -> None:
        cfg = self._configs[key]
        width = len(reqs)
        cols = np.stack([r.b for r in reqs], axis=1)
        if any(r.x0 is not None for r in reqs):
            x0 = np.stack([r.x0 if r.x0 is not None
                           else np.zeros(self.sim.n) for r in reqs], axis=1)
        else:
            x0 = None
        results = block_sstep_gmres(
            self.sim, cols, x0,
            s=cfg["s"], restart=cfg["restart"],
            tol=[r.tol for r in reqs], maxiter=[r.maxiter for r in reqs],
            scheme_factory=cfg["scheme_factory"], basis=cfg["basis"],
            precond=cfg["precond"], options=cfg["options"])
        for req, res in zip(reqs, results):
            res.diagnostics["request_id"] = req.request_id
            self._results[req.request_id] = res
        self.dispatched_widths.append(width)

    def pump(self, now: float | None = None) -> int:
        """Dispatch every group that is full or has waited out
        ``max_wait``; returns the number of requests dispatched.

        Full ``max_width`` slices always go; a partial remainder goes
        only once its oldest member has waited at least ``max_wait``
        (so ``max_wait=0`` drains everything, and a positive window
        holds partial batches back to accumulate width).
        """
        now = self._now(now)
        launched = 0
        for key in list(self._pending):
            reqs = self._pending[key]
            while len(reqs) >= self.max_width:
                batch, reqs = reqs[:self.max_width], reqs[self.max_width:]
                self._dispatch(key, batch)
                launched += len(batch)
            if reqs and now - reqs[0].submitted_at >= self.max_wait:
                self._dispatch(key, reqs)
                launched += len(reqs)
                reqs = []
            if reqs:
                self._pending[key] = reqs
            else:
                del self._pending[key]
        return launched

    def flush(self) -> int:
        """Dispatch everything pending regardless of width or age."""
        launched = 0
        for key in list(self._pending):
            reqs = self._pending.pop(key)
            for lo in range(0, len(reqs), self.max_width):
                batch = reqs[lo:lo + self.max_width]
                self._dispatch(key, batch)
                launched += len(batch)
        return launched

    def __repr__(self) -> str:
        return (f"SolveQueue(pending={self.pending}, "
                f"max_width={self.max_width}, max_wait={self.max_wait}, "
                f"dispatched={len(self.dispatched_widths)})")
