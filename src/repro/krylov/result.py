"""Solver result containers: solution, convergence history, modeled times."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class ConvergenceHistory:
    """Residual checkpoints: (iteration, relative residual) pairs.

    Checkpoints land wherever the algorithm can legally test convergence:
    every iteration for standard GMRES, every panel for one-stage s-step
    schemes, every big panel for the two-stage scheme.
    """

    iterations: list = field(default_factory=list)
    residuals: list = field(default_factory=list)

    def record(self, iteration: int, relative_residual: float) -> None:
        self.iterations.append(int(iteration))
        self.residuals.append(float(relative_residual))

    def __len__(self) -> int:
        return len(self.iterations)

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        return (np.asarray(self.iterations, dtype=np.int64),
                np.asarray(self.residuals, dtype=np.float64))


@dataclass
class SolveResult:
    """Everything a paper table needs from one solve.

    ``times`` holds *modeled* seconds by phase ("spmv", "precond",
    "ortho", "small_dense", "other") plus "total"; ``ortho_breakdown``
    holds the per-kernel split inside the ortho phase (the paper's
    Figs. 10-12: dot / update / trsm / allreduce / ...).
    """

    x: np.ndarray
    converged: bool
    iterations: int
    restarts: int
    relative_residual: float
    history: ConvergenceHistory
    times: dict = field(default_factory=dict)
    ortho_breakdown: dict = field(default_factory=dict)
    sync_count: int = 0
    solver: str = ""
    scheme: str = ""
    #: True when the solver stopped because consecutive cycles produced
    #: no usable checkpoint (basis breakdown), as opposed to reaching
    #: maxiter — the signal the adaptive step-size driver reacts to.
    stalled: bool = False
    #: Solver-specific numerics diagnostics.  The sketched s-step solve
    #: path records ``solve_mode``, the worst basis condition estimate
    #: ``kappa(S V)`` seen at a checkpoint, and the largest residual gap
    #: ``| ||r||_est - ||r||_explicit | / ||b||`` observed at a restart
    #: (the backward-stability monitor of arXiv:2409.03079).  These are
    #: solve-wide reductions of :attr:`telemetry`.
    diagnostics: dict = field(default_factory=dict)
    #: Structured per-cycle telemetry: one
    #: :class:`repro.obs.telemetry.CycleRecord` per restart cycle
    #: (per refinement for GMRES-IR) — residual norm, residual gap,
    #: basis condition, embedding distortion, solve mode and events.
    telemetry: list = field(default_factory=list)
    #: Metrics snapshot from the simulation's
    #: :class:`repro.obs.metrics.MetricsRegistry` (see
    #: :meth:`Simulation.metrics_doc`): per-kernel flops, bytes moved,
    #: arithmetic intensity, roofline utilization, collective wire
    #: bytes.  Empty dict when metrics were not enabled.  Cumulative
    #: over the simulation's lifetime, not per-solve.
    metrics: dict = field(default_factory=dict)

    @property
    def total_time(self) -> float:
        return float(self.times.get("total", 0.0))

    @property
    def ortho_time(self) -> float:
        return float(self.times.get("ortho", 0.0))

    @property
    def spmv_time(self) -> float:
        """SpMV + preconditioner time (the paper's 'SpMV' column)."""
        return float(self.times.get("spmv", 0.0)
                     + self.times.get("precond", 0.0))

    def time_per_iteration(self) -> float:
        """Modeled seconds per iteration (the paper's Table IV metric)."""
        return self.total_time / max(self.iterations, 1)

    def summary(self) -> str:
        status = "converged" if self.converged else "NOT converged"
        return (f"{self.solver}[{self.scheme}]: {status} in "
                f"{self.iterations} iterations ({self.restarts} restarts), "
                f"rel.res {self.relative_residual:.3e}; modeled "
                f"SpMV {self.spmv_time:.4f}s Ortho {self.ortho_time:.4f}s "
                f"Total {self.total_time:.4f}s")
