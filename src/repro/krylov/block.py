"""Multi-RHS block s-step GMRES: ``b`` solves, one panelized pass.

The paper's bottom line is that collective latency, not flops, dominates
s-step GMRES at scale — so serving many tenants means amortizing each
cycle's handful of allreduces across every solve in flight, not just
across the ``s`` steps of one solve.  :func:`block_sstep_gmres` runs
``b`` right-hand sides as lockstep *member* solves over a shared Krylov
block: every member advances one barrier unit per round (the yield
points of :func:`repro.krylov.sstep_gmres._solve_member`), and
:class:`repro.parallel.batch.BatchCharges` fuses the round's modeled
charges — one collective message, one kernel launch, ``b`` payloads.

Each member owns ALL of its numerical state: its own basis block,
orthogonalization scheme, ``R``/``W`` factors, basis polynomial,
telemetry and convergence bookkeeping.  Members share only the operator
and preconditioner (stateless per application) and the machine they are
charged on.  Consequently every member's solution, history and
iteration count are **bit-identical to ``b`` independent scalar
solves** — at every width, every ``s``, and in the ``s=1, block=1``
degenerate case the issue contract names — which the regression tests
assert outright.

**Per-request convergence exits.**  Convergence is per member: a
member whose explicit residual passes its own ``tol`` returns from its
generator, its :class:`~repro.krylov.result.SolveResult` and telemetry
freeze at that cycle, and it is deflated out of the active block — the
survivors keep fusing among themselves (occurrence matching is by
kernel kind, so the narrower block stays sound).  ``tol`` and
``maxiter`` accept per-request sequences for exactly this reason.

``times`` on each member's result reads the shared batch timeline up to
that member's own exit (members do not run on private clocks), and
``diagnostics`` gains ``batch_width``, ``batch_index`` and
``exit_cycle``.
"""

from __future__ import annotations

import numpy as np

from repro.config import (
    DEFAULT_RESTART,
    DEFAULT_STEP_SIZE,
    DEFAULT_TOL,
)
from repro.exceptions import ConfigurationError, ShapeError
from repro.krylov.basis import KrylovBasis
from repro.krylov.mpk import (
    MatrixPowersKernel,
    PreconditionedOperator,
    resolve_mpk_mode,
)
from repro.krylov.options import SolverOptions
from repro.krylov.result import SolveResult
from repro.krylov.simulation import Simulation
from repro.krylov.sstep_gmres import (
    _default_scheme,
    _resolve_basis,
    _solve_member,
)
from repro.ortho.base import OrthoObserver
from repro.parallel.batch import BatchCharges
from repro.precision.dtypes import word_bytes as _bytes_per_word
from repro.precision.policy import resolve_policy
from repro.precond.base import Preconditioner


def _as_columns(sim: Simulation, bs) -> np.ndarray:
    """Normalize the right-hand sides to an ``(n, width)`` column array."""
    if isinstance(bs, (list, tuple)):
        cols = [np.asarray(b, dtype=np.float64).ravel() for b in bs]
        if not cols:
            raise ShapeError("block_sstep_gmres needs at least one RHS")
        arr = np.stack(cols, axis=1)
    else:
        arr = np.asarray(bs, dtype=np.float64)
        if arr.ndim == 1:
            arr = arr[:, np.newaxis]
    if arr.ndim != 2 or arr.shape[0] != sim.n:
        raise ShapeError(
            f"right-hand sides must be (n, width) columns with n={sim.n}, "
            f"got shape {arr.shape}")
    return arr


def _per_member(value, width: int, name: str) -> list:
    """Broadcast a scalar setting, or validate a per-request sequence."""
    if np.ndim(value) == 0:
        return [value] * width
    seq = list(value)
    if len(seq) != width:
        raise ConfigurationError(
            f"per-request {name} has {len(seq)} entries for {width} "
            f"right-hand sides")
    return seq


def block_sstep_gmres(sim: Simulation, bs, x0=None, *,
                      s: int = DEFAULT_STEP_SIZE,
                      restart: int = DEFAULT_RESTART,
                      tol=DEFAULT_TOL, maxiter=100_000,
                      scheme_factory=None,
                      basis: str | KrylovBasis = "monomial",
                      precond: Preconditioner | None = None,
                      observer: OrthoObserver | None = None,
                      options: SolverOptions | None = None
                      ) -> list[SolveResult]:
    """Solve ``A x_j = b_j`` for every column of ``bs`` in one batch.

    Parameters mirror :func:`~repro.krylov.sstep_gmres.sstep_gmres`
    with three deviations:

    bs:
        ``(n, width)`` array of RHS columns, or a sequence of length-n
        vectors — one solve request per column.
    tol, maxiter:
        Scalar (applies to every request) or a length-``width``
        sequence — convergence is tested per request and converged
        columns deflate out of the active block at their own cycle.
    scheme_factory:
        Zero-argument callable producing a FRESH scheme per member
        (scheme instances are stateful and cannot be shared).  Default:
        the scalar solver's policy-dependent default, per member.

    ``x0`` may be ``None``, one length-n vector (shared start), or an
    ``(n, width)`` column array.  Returns one
    :class:`~repro.krylov.result.SolveResult` per request, in request
    order, each bit-identical to the corresponding independent
    :func:`sstep_gmres` call.
    """
    opts = SolverOptions() if options is None else options
    if restart < s:
        raise ConfigurationError(f"restart {restart} must be >= step {s}")
    cols = _as_columns(sim, bs)
    width = cols.shape[1]
    if isinstance(basis, KrylovBasis) and width > 1:
        raise ConfigurationError(
            "a KrylovBasis instance is stateful and cannot be shared "
            "across block members; pass the basis by name so each member "
            "builds its own")
    tols = _per_member(tol, width, "tol")
    maxiters = _per_member(maxiter, width, "maxiter")
    if x0 is None:
        x0s = [None] * width
    else:
        x0_arr = np.asarray(x0, dtype=np.float64)
        if x0_arr.ndim == 1:
            x0s = [x0_arr] * width
        elif x0_arr.shape == (sim.n, width):
            x0s = [x0_arr[:, j] for j in range(width)]
        else:
            raise ShapeError(
                f"x0 must be (n,) or (n, width); got {x0_arr.shape}")

    policy = resolve_policy(opts.precision)
    snap = sim.tracer.snapshot()
    if precond is not None and not precond.is_setup:
        precond.setup(sim.matrix)
    op = PreconditionedOperator(sim.matrix, precond)
    kernel_mode = resolve_mpk_mode(op, opts.mpk_mode, sim.comm, s,
                                   word_bytes=_bytes_per_word(policy.storage))

    members: list[tuple[int, object]] = []
    for j in range(width):
        scheme = (scheme_factory() if scheme_factory is not None
                  else _default_scheme(policy, restart))
        poly = _resolve_basis(basis)
        mpk = MatrixPowersKernel(op, poly, mode=kernel_mode)
        gen = _solve_member(sim, cols[:, j], x0s[j], s=s, restart=restart,
                            tol=tols[j], maxiter=maxiters[j], scheme=scheme,
                            poly=poly, op=op, mpk=mpk,
                            kernel_mode=kernel_mode, observer=observer,
                            opts=opts, policy=policy, snap=snap)
        members.append((j, gen))

    results: list[SolveResult | None] = [None] * width
    with BatchCharges(sim.comm) as batch:
        active = list(members)
        while active:
            with batch.group():
                still = []
                for j, gen in active:
                    with batch.member():
                        try:
                            next(gen)
                        except StopIteration as stop:
                            res = stop.value
                            res.solver = "block_sstep_gmres"
                            res.diagnostics["batch_width"] = width
                            res.diagnostics["batch_index"] = j
                            res.diagnostics["exit_cycle"] = res.restarts
                            results[j] = res
                        else:
                            still.append((j, gen))
                active = still
    return results  # type: ignore[return-value]
