"""Matrix powers kernel and the (right-)preconditioned operator.

Trilinos' s-step GMRES uses the *standard* MPK — "applying each SpMV with
neighborhood communication and preconditioner in sequence" (paper
Section III) — rather than a communication-avoiding MPK, because CA-MPK
composes badly with general preconditioners.  We implement the same:
:class:`MatrixPowersKernel` extends the basis s columns at a time with
one halo exchange + local SpMV (+ preconditioner apply) per step,
following the recurrence of the configured :class:`KrylovBasis`.
"""

from __future__ import annotations


from repro.distla import blas as dblas
from repro.distla.multivector import DistMultiVector
from repro.distla.spmatrix import DistSparseMatrix
from repro.exceptions import ConfigurationError
from repro.krylov.basis import KrylovBasis, MonomialBasis
from repro.precond.base import IdentityPreconditioner, Preconditioner


class PreconditionedOperator:
    """Right-preconditioned operator ``op(v) = A (M^{-1} v)``.

    Right preconditioning keeps the GMRES residual in the original
    (unpreconditioned) norm, so the paper's convergence criterion — six
    orders of relative residual reduction — is unchanged.
    """

    def __init__(self, matrix: DistSparseMatrix,
                 precond: Preconditioner | None = None) -> None:
        self.matrix = matrix
        self.precond = precond if precond is not None else IdentityPreconditioner()
        self._scratch: DistMultiVector | None = None

    @property
    def is_preconditioned(self) -> bool:
        return not isinstance(self.precond, IdentityPreconditioner)

    def _get_scratch(self, like: DistMultiVector) -> DistMultiVector:
        if (self._scratch is None
                or self._scratch.partition != like.partition):
            self._scratch = DistMultiVector.zeros(
                like.partition, like.comm, 1)
        return self._scratch

    def apply(self, x: DistMultiVector, out: DistMultiVector) -> None:
        """``out = A M^{-1} x`` with phase-correct cost attribution."""
        comm = self.matrix.comm
        if self.is_preconditioned:
            z = self._get_scratch(x)
            with comm.tracer.phase("precond"):
                self.precond.apply(x, z)
            with comm.tracer.phase("spmv"):
                self.matrix.matvec(z, out=out)
        else:
            with comm.tracer.phase("spmv"):
                self.matrix.matvec(x, out=out)

    def apply_inverse_precond(self, x: DistMultiVector,
                              out: DistMultiVector) -> None:
        """``out = M^{-1} x`` (for the solution update ``x += M^{-1} Q y``)."""
        comm = self.matrix.comm
        if self.is_preconditioned:
            with comm.tracer.phase("precond"):
                self.precond.apply(x, out)
        else:
            out.assign_from(x)


class MatrixPowersKernel:
    """Fill basis columns ``[lo, hi)`` from column ``lo - 1`` (Fig. 1 l. 7-9).

    Per step ``k`` (global Arnoldi index), the configured basis recurrence

        v_{k+1} = (op(v_k) - alpha_k v_k - gamma_k v_{k-1}) / beta_k

    is evaluated with one operator application (halo + local SpMV [+
    preconditioner]) and a cheap streaming combination.
    """

    def __init__(self, op: PreconditionedOperator,
                 basis_poly: KrylovBasis | None = None) -> None:
        self.op = op
        self.basis_poly = basis_poly if basis_poly is not None else MonomialBasis()

    def extend(self, basis: DistMultiVector, lo: int, hi: int) -> None:
        """Generate columns ``lo..hi-1`` of ``basis`` (``lo >= 1``)."""
        if lo < 1:
            raise ConfigurationError("MPK needs a starting column before lo")
        comm = basis.comm
        for col in range(lo, hi):
            k = col - 1  # recurrence step index
            alpha, beta, gamma = self.basis_poly.coefficients(k)
            v_k = basis.view_cols(col - 1)
            v_next = basis.view_cols(col)
            self.op.apply(v_k, v_next)  # v_next = A M^{-1} v_k
            if alpha != 0.0 or gamma != 0.0 or beta != 1.0:
                with comm.tracer.phase("spmv"):
                    terms = [(1.0 / beta, v_next.copy()),
                             (-alpha / beta, v_k)]
                    if gamma != 0.0 and col >= 2:
                        terms.append((-gamma / beta, basis.view_cols(col - 2)))
                    dblas.lincomb(v_next, terms)
