"""Matrix powers kernels and the (right-)preconditioned operator.

Two execution modes generate the s-step basis (Fig. 1 lines 7-9):

* ``"standard"`` — Trilinos' choice, which the paper follows: "applying
  each SpMV with neighborhood communication and preconditioner in
  sequence" (Section III).  One halo exchange + local SpMV (+
  preconditioner apply) per basis column: ``s`` latency-bound
  neighbourhood synchronizations per panel.
* ``"ca"`` — the communication-avoiding MPK of the classic s-step
  formulation (Chronopoulos & Kim; Demmel et al.'s "PA1"): ONE
  aggregated deep-halo exchange per panel gathers the s-level ghost-zone
  closure (:meth:`~repro.distla.spmatrix.DistSparseMatrix.ghost_plan`),
  then every step is a purely local SpMV that redundantly recomputes a
  ghost region shrinking by one level per step.  Latency is paid once
  per panel instead of once per column, at the price of redundant flops
  on the ghost rings.
* ``"ca_overlap"`` — the overlapped variant (Demmel et al.'s "PA2"):
  the depth-1 nearest-neighbour shell is exchanged eagerly (blocking),
  the deep-ring remainder is *posted* as a nonblocking exchange
  (:meth:`~repro.parallel.communicator.SimComm.post_ihalo`), and the
  first step's owned-rows SpMV runs inside the overlap window — the
  ring's modeled time drains behind it and the wait charges only the
  exposed remainder.  Same aggregate payload, same redundant flops,
  (partially) hidden deep-halo latency.

All modes evaluate the identical recurrence over identical operand
values, so the generated basis is bit-identical — the tracer alone can
tell them apart.  CA composes with preconditioners through the ghost
closure (:attr:`~repro.precond.base.Preconditioner.ghost_compat`):
identity/Jacobi expand pointwise, block Jacobi rounds every level up to
whole owner blocks, and anything else (polynomial, ...) has no finite
closure — :class:`MatrixPowersKernel` raises ``ConfigurationError``,
which is exactly why the paper (and Trilinos) default to the standard
kernel for general preconditioning.  ``"ca_overlap"`` is stricter
still: splitting the ghost apply around the overlap window only has a
well-defined cost split for the *unpreconditioned* operator, so any
real preconditioner is rejected.
"""

from __future__ import annotations

import numpy as np

from repro.distla import blas as dblas
from repro.distla.multivector import DistMultiVector
from repro.distla.spmatrix import DistSparseMatrix
from repro.exceptions import ConfigurationError
from repro.krylov.basis import KrylovBasis, MonomialBasis
from repro.precond.base import IdentityPreconditioner, Preconditioner

#: Valid ``mode`` values for :class:`MatrixPowersKernel`.
MPK_MODES = ("standard", "ca", "ca_overlap")


class PreconditionedOperator:
    """Right-preconditioned operator ``op(v) = A (M^{-1} v)``.

    Right preconditioning keeps the GMRES residual in the original
    (unpreconditioned) norm, so the paper's convergence criterion — six
    orders of relative residual reduction — is unchanged.
    """

    def __init__(self, matrix: DistSparseMatrix,
                 precond: Preconditioner | None = None) -> None:
        self.matrix = matrix
        self.precond = precond if precond is not None else IdentityPreconditioner()
        self._scratch: DistMultiVector | None = None

    @property
    def is_preconditioned(self) -> bool:
        return not isinstance(self.precond, IdentityPreconditioner)

    @property
    def ghost_expand(self) -> str | None:
        """Ghost-closure expansion rule of the composed operator, or
        None when the preconditioner breaks CA composition."""
        return self.precond.ghost_compat

    @property
    def supports_ca(self) -> bool:
        """True when the CA-MPK can fold ``M^{-1}`` into its closure."""
        return self.precond.ghost_compat is not None

    def _get_scratch(self, like: DistMultiVector) -> DistMultiVector:
        s = self._scratch
        if (s is None
                or s.partition != like.partition
                or s.comm is not like.comm
                or s.storage != like.storage
                or s.accumulate != like.accumulate):
            # a stale scratch bound to another communicator would charge
            # modeled time to the wrong tracer; a storage mismatch would
            # silently run (and charge) the preconditioned chain at the
            # wrong precision
            self._scratch = DistMultiVector.zeros(
                like.partition, like.comm, 1, storage=like.storage,
                accumulate=like.accumulate)
        return self._scratch

    def apply(self, x: DistMultiVector, out: DistMultiVector) -> None:
        """``out = A M^{-1} x`` with phase-correct cost attribution."""
        comm = self.matrix.comm
        if self.is_preconditioned:
            z = self._get_scratch(x)
            with comm.tracer.phase("precond"):
                self.precond.apply(x, z)
            with comm.tracer.phase("spmv"):
                self.matrix.matvec(z, out=out)
        else:
            with comm.tracer.phase("spmv"):
                self.matrix.matvec(x, out=out)

    def apply_inverse_precond(self, x: DistMultiVector,
                              out: DistMultiVector) -> None:
        """``out = M^{-1} x`` (for the solution update ``x += M^{-1} Q y``)."""
        comm = self.matrix.comm
        if self.is_preconditioned:
            with comm.tracer.phase("precond"):
                self.precond.apply(x, out)
        else:
            out.assign_from(x)


class MatrixPowersKernel:
    """Fill basis columns ``[lo, hi)`` from column ``lo - 1`` (Fig. 1 l. 7-9).

    Per step ``k`` (global Arnoldi index), the configured basis recurrence

        v_{k+1} = (op(v_k) - alpha_k v_k - gamma_k v_{k-1}) / beta_k

    is evaluated with one operator application and a cheap streaming
    combination.  ``mode`` selects how the operator applications
    communicate (see module docstring): ``"standard"`` pays one halo
    exchange per step, ``"ca"`` one aggregated deep-halo exchange per
    :meth:`extend` call.
    """

    def __init__(self, op: PreconditionedOperator,
                 basis_poly: KrylovBasis | None = None,
                 mode: str = "standard") -> None:
        self.op = op
        self.basis_poly = basis_poly if basis_poly is not None else MonomialBasis()
        if mode not in MPK_MODES:
            raise ConfigurationError(
                f"unknown MPK mode {mode!r}; expected one of {MPK_MODES}")
        if mode in ("ca", "ca_overlap") and not op.supports_ca:
            raise ConfigurationError(
                f"CA-MPK cannot compose with preconditioner "
                f"{op.precond.name!r}: its ghost values have no finite "
                f"dependency closure (ghost_compat=None); use "
                f"mode='standard' (or mpk_mode='auto' in sstep_gmres for "
                f"the automatic fallback)")
        if mode == "ca_overlap" and op.is_preconditioned:
            raise ConfigurationError(
                f"the overlapped CA-MPK (PA2) does not compose with "
                f"preconditioner {op.precond.name!r}: splitting the "
                f"ghost apply around the posted ring exchange has no "
                f"well-defined cost split for a preconditioned operator; "
                f"use mode='ca' or mode='standard'")
        self.mode = mode

    def extend(self, basis: DistMultiVector, lo: int, hi: int) -> None:
        """Generate columns ``lo..hi-1`` of ``basis`` (``lo >= 1``)."""
        if lo < 1:
            raise ConfigurationError("MPK needs a starting column before lo")
        if hi <= lo:
            return
        if self.mode in ("ca", "ca_overlap"):
            self._extend_ca(basis, lo, hi,
                            overlap=self.mode == "ca_overlap")
        else:
            self._extend_standard(basis, lo, hi)

    # ------------------------------------------------------------------
    def _extend_standard(self, basis: DistMultiVector, lo: int,
                         hi: int) -> None:
        comm = basis.comm
        for col in range(lo, hi):
            k = col - 1  # recurrence step index
            alpha, beta, gamma = self.basis_poly.coefficients(k)
            v_k = basis.view_cols(col - 1)
            v_next = basis.view_cols(col)
            self.op.apply(v_k, v_next)  # v_next = A M^{-1} v_k
            if alpha != 0.0 or gamma != 0.0 or beta != 1.0:
                with comm.tracer.phase("spmv"):
                    terms = [(1.0 / beta, v_next.copy()),
                             (-alpha / beta, v_k)]
                    if gamma != 0.0 and col >= 2:
                        terms.append((-gamma / beta, basis.view_cols(col - 2)))
                    dblas.lincomb(v_next, terms)

    # ------------------------------------------------------------------
    def _extend_ca(self, basis: DistMultiVector, lo: int, hi: int,
                   overlap: bool = False) -> None:
        """Ghost-zone CA panel: 1 aggregated exchange + ``hi - lo`` local
        steps over a shrinking closure.

        Each rank keeps a work array valid on its own closure level and
        redundantly recomputes the shrinking ghost region — the real
        PA1-style execution, not a shortcut: values outside a rank's
        closure stay zero, so an under-sized closure would contaminate
        the basis and fail the bit-identity contract with the standard
        kernel (which the test suite asserts).

        With ``overlap`` (PA2) the exchange is split: the depth-1 shell
        goes out eagerly (blocking — the first step's owned rows need
        it), the deep ring is posted nonblocking, and the first step's
        SpMV charge is split into an owned-rows part (inside the overlap
        window, draining the posted ring) and a ghost-ring remainder
        after the wait.  The computed *values* are untouched — the
        simulator's exchanges are charge-only — so the basis stays
        bit-identical to ``"ca"`` and ``"standard"``.
        """
        comm = basis.comm
        tracer = comm.tracer
        matrix = self.op.matrix
        part = basis.partition
        steps = hi - lo
        plan = matrix.ghost_plan(steps, self.op.ghost_expand)
        n = part.n_global
        ranks = part.ranks
        ctype = basis.np_dtype
        quantized = basis.storage != "fp64"
        preconditioned = self.op.is_preconditioned

        coeffs = {col: self.basis_poly.coefficients(col - 1)
                  for col in range(lo, hi)}
        # three-term recurrences reach back one extra column; the panel's
        # first step additionally needs the *previous* panel's last
        # column on the ghost region, which rides in the same exchange
        track_prev = any(g != 0.0 for (_, _, g) in coeffs.values())
        gather_prev = coeffs[lo][2] != 0.0 and lo >= 2

        # -- the ONE aggregated deep-halo exchange ----------------------
        # (PA2: eager depth-1 shell now, deep ring posted nonblocking)
        n_vec = 2 if gather_prev else 1
        ring_req = None
        with tracer.phase("spmv"):
            if overlap:
                comm.charge_halo(plan.eager_recv_bytes(
                    basis.word_bytes, n_vectors=n_vec))
                ring = plan.ring_recv_bytes(basis.word_bytes,
                                            n_vectors=n_vec)
                if any(ring):  # s == 1 (or a tiny grid) has no ring
                    ring_req = comm.post_ihalo(ring)
            else:
                comm.charge_halo(plan.recv_bytes(
                    basis.word_bytes, n_vectors=n_vec))

        def _gathered(col: int) -> list[np.ndarray]:
            """Per-rank work arrays of basis column ``col``: owned rows
            plus the exchanged deep-halo ghosts, zero elsewhere."""
            g = basis.view_cols(col).to_global()[:, 0].astype(np.float64)
            out = []
            for r in range(ranks):
                w = np.zeros(n)
                held = plan.levels[r][steps]
                w[held] = g[held]
                out.append(w)
            return out

        v_k = _gathered(lo - 1)
        v_km1 = _gathered(lo - 2) if gather_prev else [None] * ranks
        z = [np.zeros(n) for _ in range(ranks)] if preconditioned else None

        for col in range(lo, hi):
            depth = hi - 1 - col  # ghost levels remaining after this step
            alpha, beta, gamma = coeffs[col]
            three_term = gamma != 0.0 and col >= 2
            recurrence = alpha != 0.0 or gamma != 0.0 or beta != 1.0
            v_new = []
            if preconditioned:
                with tracer.phase("precond"):
                    for r in range(ranks):
                        self.op.precond.apply_ghosted(
                            v_k[r], plan.levels[r][depth + 1], z[r], ctype)
                    self.op.precond.charge_ghost_apply(comm, plan, depth + 1)
            with tracer.phase("spmv"):
                for r in range(ranks):
                    rows = plan.levels[r][depth]
                    y = plan.level_blocks[r][depth] @ (
                        z[r] if preconditioned else v_k[r])
                    if quantized:
                        y = basis.quantize(y).astype(np.float64)
                    w = np.zeros(n)
                    w[rows] = y
                    v_new.append(w)
                if ring_req is not None and col == lo:
                    # PA2 first step: owned rows only need the eager
                    # shell — their charge drains the posted ring...
                    comm.charge_local("spmv_local", [
                        comm.cost.spmv(int(plan.level_nnz[r, 0]),
                                       int(plan.level_rows[r, 0]),
                                       int(plan.level_rows[r, 1]),
                                       word_bytes=basis.word_bytes)
                        for r in range(ranks)])
                    # ...then the ghost-ring remainder pays whatever the
                    # wait left exposed before it may run
                    comm.wait(ring_req)
                    comm.charge_local("spmv_local", [
                        comm.cost.spmv(
                            int(plan.level_nnz[r, depth]
                                - plan.level_nnz[r, 0]),
                            int(plan.level_rows[r, depth]
                                - plan.level_rows[r, 0]),
                            int(plan.level_rows[r, depth + 1]),
                            word_bytes=basis.word_bytes)
                        for r in range(ranks)])
                else:
                    comm.charge_local("spmv_local", [
                        comm.cost.spmv(int(plan.level_nnz[r, depth]),
                                       int(plan.level_rows[r, depth]),
                                       int(plan.level_rows[r, depth + 1]),
                                       word_bytes=basis.word_bytes)
                        for r in range(ranks)])
                if recurrence:
                    for r in range(ranks):
                        rows = plan.levels[r][depth]
                        # identical operation order to the engines' lincomb
                        acc = (1.0 / beta) * v_new[r][rows]
                        acc += (-alpha / beta) * v_k[r][rows]
                        if three_term:
                            acc += (-gamma / beta) * v_km1[r][rows]
                        if quantized:
                            acc = basis.quantize(acc).astype(np.float64)
                        v_new[r][rows] = acc
                    comm.charge_local("axpy", [
                        comm.cost.blas1(int(plan.level_rows[r, depth]),
                                        n_streams=3 if three_term else 2,
                                        writes=1,
                                        word_bytes=basis.word_bytes)
                        for r in range(ranks)])
            for r in range(ranks):
                basis.shards[r][:, col:col + 1] = (
                    v_new[r][part.local_slice(r)][:, np.newaxis])
            if track_prev:
                v_km1 = v_k
            v_k = v_new


def overlap_ring_hides(op: PreconditionedOperator, comm, s: int,
                       word_bytes: float = 8.0) -> bool:
    """Does the PA2 deep-ring exchange fully hide behind the first
    owned-rows SpMV?  The cost-model predicate behind ``mpk_mode="auto"``.

    The overlapped kernel only beats plain ``"ca"`` when the posted
    ring's wire time drains entirely inside the overlap window — the
    first step's owned-rows SpMV (see :meth:`MatrixPowersKernel
    ._extend_ca`).  Both sides are evaluated with the exact quantities
    the kernel itself charges: the worst-rank
    :meth:`~repro.parallel.costmodel.CostModel.halo_exchange` over
    ``ring_recv_bytes`` versus the worst-rank owned-rows
    :meth:`~repro.parallel.costmodel.CostModel.spmv`.  On a machine
    whose per-message latency dominates (the ring's fixed cost scales
    with it, the window does not), splitting one exchange into two
    stops paying for itself and the predicate flips off.

    Only defined for the unpreconditioned operator — PA2 rejects any
    real preconditioner — and trivially false when the closure has no
    deep ring (``s < 2`` or a degenerately small grid).
    """
    if s < 2 or not op.supports_ca or op.is_preconditioned:
        return False
    plan = op.matrix.ghost_plan(s, op.ghost_expand)
    ring = plan.ring_recv_bytes(word_bytes, n_vectors=1)
    if not any(ring):
        return False
    cost = comm.cost
    ranks = op.matrix.partition.ranks
    ring_cost = max(cost.halo_exchange(ring[r], r, ranks)
                    for r in range(ranks))
    window = max(cost.spmv(int(plan.level_nnz[r, 0]),
                           int(plan.level_rows[r, 0]),
                           int(plan.level_rows[r, 1]),
                           word_bytes=word_bytes)
                 for r in range(ranks))
    return ring_cost <= window


def resolve_mpk_mode(op: PreconditionedOperator, mpk_mode: str, comm,
                     s: int, word_bytes: float = 8.0) -> str:
    """Resolve a solver-level ``mpk_mode`` (possibly ``"auto"``) to a
    concrete :class:`MatrixPowersKernel` mode.

    ``"auto"`` falls back to ``"standard"`` when the preconditioner has
    no finite ghost closure, escalates to ``"ca_overlap"`` when
    :func:`overlap_ring_hides` predicts the posted ring is free, and
    settles on ``"ca"`` otherwise.  Explicit modes pass through
    untouched (their validation lives in :class:`MatrixPowersKernel`).
    """
    if mpk_mode != "auto":
        return mpk_mode
    if not op.supports_ca:
        return "standard"
    if overlap_ring_hides(op, comm, s, word_bytes=word_bytes):
        return "ca_overlap"
    return "ca"
