"""Pipelined GMRES with one-reduce DCGS-2 orthogonalization (ref. [25]).

The paper's ref. [25] covers "low-synchronization orthogonalization
schemes for s-step and *pipelined* Krylov solvers in Trilinos".  This
solver is the pipelined member of that family: one fused global
reduction per iteration (vs. three for GMRES+CGS2), obtained by letting
the matrix powers application run on the *pending* (once-projected,
unnormalized) newest basis column while its reorthogonalization and
normalization are still in flight.

Algebra: the operator is applied to column ``j-1`` in its pending state
``q~_{j-1} = Q z + alpha q_{j-1}``; the representation ``[z; alpha]`` is
exactly the R column DCGS-2 reports when it settles that column, so the
Hessenberg matrix follows from the same mixed recovery the s-step solver
uses (``H = C W^{-1}``, :func:`assemble_hessenberg_mixed`) with

    W[:, k] = R column of the *content* of column k at its use time,
    C[:, k] = R column of the raw vector it produced.

Convergence is tested once per restart cycle (the classical trade-off of
pipelined variants: estimate freshness for latency); the explicit
restart residual keeps the reported convergence exact.

``options=SolverOptions(comm_overlap=True)`` posts the settle-side half
of each iteration's fused reduction *before* the operator application
(:meth:`DCGS2Orthogonalizer.post_push`): the pairs whose inputs are
final at the end of ``push(j-1)`` travel nonblocking while the matrix
powers apply runs, and ``push(j)`` waits only the exposed remainder.
Per-pair reduction trees are independent, so the solve — iterates,
history, Hessenberg — is bit-identical with the flag on or off; only
the collective *count* (two smaller messages per iteration instead of
one fused one) and the charged communication profile change.
"""

from __future__ import annotations

import numpy as np

from repro.config import DEFAULT_RESTART, DEFAULT_TOL
from repro.distla import blas as dblas
from repro.exceptions import NumericalError
from repro.krylov.gmres import _explicit_residual
from repro.krylov.hessenberg import least_squares_residual
from repro.krylov.mpk import PreconditionedOperator
from repro.krylov.options import SolverOptions
from repro.krylov.result import ConvergenceHistory, SolveResult
from repro.krylov.simulation import Simulation
from repro.ortho.low_sync import DCGS2Orthogonalizer
from repro.precond.base import Preconditioner
import scipy.linalg


def pipelined_gmres(sim: Simulation, b: np.ndarray,
                    x0: np.ndarray | None = None, *,
                    restart: int = DEFAULT_RESTART, tol: float = DEFAULT_TOL,
                    maxiter: int = 100_000,
                    precond: Preconditioner | None = None,
                    options: SolverOptions | None = None) -> SolveResult:
    """Restarted pipelined GMRES: ~1 synchronization per iteration.

    ``options`` takes the same :class:`SolverOptions` bundle as
    :func:`~repro.krylov.sstep_gmres.sstep_gmres` so call sites can
    swap solvers without repacking their configuration; of its knobs
    only ``comm_overlap`` applies here (this solver has no s-step
    panels, solve modes, or precision policy — see the module
    docstring for what the flag does).
    """
    opts = options if options is not None else SolverOptions()
    overlap = opts.comm_overlap
    tracer = sim.tracer
    backend = sim.backend
    snap = tracer.snapshot()
    if precond is not None and not precond.is_setup:
        precond.setup(sim.matrix)
    op = PreconditionedOperator(sim.matrix, precond)

    b = np.asarray(b, dtype=np.float64).ravel()
    b_vec = sim.vector_from(b)
    x_vec = sim.vector_from(x0 if x0 is not None else np.zeros(sim.n))
    r_vec = sim.zeros(1)
    basis = sim.zeros(restart + 1)
    history = ConvergenceHistory()

    beta0 = None
    iters = 0
    restarts = 0
    converged = False
    rel_res = np.inf

    while iters < maxiter and not converged:
        gamma = _explicit_residual(sim, b_vec, x_vec, r_vec)
        if beta0 is None:
            beta0 = gamma if gamma > 0 else 1.0
            history.record(0, gamma / beta0)
        rel_res = gamma / beta0
        if rel_res <= tol:
            converged = True
            break
        with tracer.phase("ortho"):
            dblas.copy_into(basis.view_cols(0), r_vec)
        ortho = DCGS2Orthogonalizer()
        with tracer.phase("ortho"):
            ortho.start(backend, basis)  # normalizes column 0 (= r/gamma)
        # W[:, k]: representation (over the final basis) of column k's
        # content at the moment A consumed it; C[:, k]: representation of
        # the raw vector that application produced.  Both settle lazily
        # out of the DCGS-2 pipeline.
        w_rep = np.zeros((restart + 1, restart))
        c_rep = np.zeros((restart + 1, restart))
        w_rep[0, 0] = 1.0  # column 0 was settled exactly before its use
        steps = 0
        for j in range(1, restart + 1):
            if overlap:
                # post the settle-side half of push(j)'s reduction so it
                # travels while the operator application runs below
                with tracer.phase("ortho"):
                    ortho.post_push(j)
            # apply the operator to the *current* (possibly pending)
            # content of column j-1 — the defining pipelined overlap
            op.apply(basis.view_cols(j - 1), basis.view_cols(j))
            try:
                with tracer.phase("ortho"):
                    settled = ortho.push(j)
            except NumericalError:
                break  # new direction vanished: truncate the cycle here
            steps = j
            iters += 1
            if settled is not None:
                # column j-1 settled: the raw vector it came from is the
                # output of step j-1 ...
                c_rep[: settled.shape[0], j - 2] = settled
                # ... and its *pre-settle* content is what step j's
                # operator application just consumed.
                rep = ortho.settled_content_rep
                w_rep[: rep.shape[0], j - 1] = rep
            if iters >= maxiter:
                break
        if steps < 1:
            break
        try:
            with tracer.phase("ortho"):
                last = ortho.flush()
            c_rep[: last.shape[0], steps - 1] = last
        except NumericalError:
            # the final column collapsed; drop it from the least squares
            steps -= 1
            if steps < 1:
                break
        # Hessenberg from the mixed representations: H = C W^{-1}
        c = steps
        w_small = np.triu(w_rep[:c, :c])
        h = scipy.linalg.solve_triangular(w_small, c_rep[: c + 1, :c].T,
                                          trans="T", lower=False).T
        backend.host_flops(2.0 * c ** 3)
        rhs = np.zeros(c + 1)
        rhs[0] = gamma
        y, resid = least_squares_residual(h, gamma, rhs=rhs)
        backend.host_flops(2.0 * c ** 3)
        rel_res = resid / beta0
        history.record(iters, rel_res)
        tmp = sim.zeros(1)
        z = sim.zeros(1)
        with tracer.phase("other"):
            dblas.matvec_small(basis.view_cols(slice(0, c)),
                               y[:, np.newaxis], tmp)
        op.apply_inverse_precond(tmp, z)
        with tracer.phase("other"):
            dblas.lincomb(x_vec, [(1.0, x_vec), (1.0, z)])
        restarts += 1
        if rel_res <= tol:
            continue  # explicit residual at loop top confirms

    totals = tracer.since(snap)
    times = dict(totals.by_phase)
    times["total"] = totals.clock
    ortho_breakdown = {k[1]: v for k, v in totals.by_kernel.items()
                       if k[0] == "ortho"}
    sync_count = sum(cnt for (ph, kern), cnt in totals.counts.items()
                     if kern == "allreduce")
    return SolveResult(
        x=x_vec.to_global()[:, 0], converged=converged, iterations=iters,
        restarts=restarts, relative_residual=float(rel_res),
        history=history, times=times, ortho_breakdown=ortho_breakdown,
        sync_count=sync_count, solver="pipelined_gmres", scheme="dcgs2",
        metrics=sim.metrics_doc())
