"""Adaptive step-size driver for s-step GMRES.

The paper's closing argument (Sections I/VIII): the step size ``s``
"needs to be carefully chosen for each problem on a different hardware
[and] it is often infeasible to fine-tune"; in practice a conservative
``s = 5`` is used, and the two-stage scheme recovers the performance a
larger block would have given.  This module provides the *other* classic
answer for comparison — adapt ``s`` at runtime (cf. the adaptive step
size of ref. [26]): start from an aggressive ``s_max`` and halve it
whenever the matrix-powers basis breaks down, warm-starting from the
best iterate so far.

:func:`adaptive_sstep_gmres` wraps the stock solver: no changes to the
inner iteration, pure restart-level control.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.config import DEFAULT_RESTART, DEFAULT_TOL
from repro.exceptions import ConfigurationError
from repro.krylov.options import SolverOptions
from repro.krylov.result import ConvergenceHistory, SolveResult
from repro.krylov.simulation import Simulation
from repro.krylov.sstep_gmres import sstep_gmres
from repro.precond.base import Preconditioner


def adaptive_sstep_gmres(sim: Simulation, b: np.ndarray,
                         x0: np.ndarray | None = None, *,
                         s_max: int = 10, s_min: int = 1,
                         restart: int = DEFAULT_RESTART,
                         tol: float = DEFAULT_TOL, maxiter: int = 100_000,
                         scheme_factory=None,
                         basis: str = "monomial",
                         precond: Preconditioner | None = None,
                         options: SolverOptions | None = None
                         ) -> SolveResult:
    """s-step GMRES with runtime step-size adaptation.

    Parameters mirror :func:`~repro.krylov.sstep_gmres.sstep_gmres`
    (including ``options``, forwarded verbatim to every attempt) except
    that ``scheme_factory`` is a zero-argument callable producing
    a fresh scheme per attempt (schemes may bind to a step size — e.g.
    ``lambda: BCGSPIP2Scheme()``); defaults to BCGS-PIP2.

    Returns the final :class:`SolveResult`; ``result.scheme`` carries the
    step-size trajectory, e.g. ``"bcgs-pip2[s=10->5]"``.
    """
    if s_min < 1 or s_max < s_min:
        raise ConfigurationError(
            f"need 1 <= s_min <= s_max, got [{s_min}, {s_max}]")
    if scheme_factory is None:
        from repro.ortho.bcgs_pip import BCGSPIP2Scheme
        scheme_factory = BCGSPIP2Scheme
    s = min(s_max, restart)
    trajectory = [s]
    x = np.array(x0, dtype=np.float64) if x0 is not None else np.zeros(sim.n)
    total_iters = 0
    total_restarts = 0
    history = ConvergenceHistory()
    telemetry: list = []
    result: SolveResult | None = None
    while total_iters < maxiter:
        result = sstep_gmres(
            sim, b, x0=x, s=s, restart=restart, tol=tol,
            maxiter=maxiter - total_iters, scheme=scheme_factory(),
            basis=basis, precond=precond, options=options)
        # merge bookkeeping across attempts (cycle numbers and
        # iteration counts renumbered onto the combined timeline)
        its, res = result.history.as_arrays()
        for i, r in zip(its, res):
            history.record(int(i) + total_iters, float(r))
        telemetry.extend(
            dataclasses.replace(rec, cycle=rec.cycle + total_restarts,
                                iterations=rec.iterations + total_iters)
            for rec in result.telemetry)
        total_iters += result.iterations
        total_restarts += result.restarts
        x = result.x
        if result.converged or not result.stalled:
            break
        if s == s_min:
            break  # stalled at the floor: give up honestly
        s = max(s_min, s // 2)
        trajectory.append(s)
    assert result is not None
    label = "->".join(str(v) for v in trajectory)
    result.iterations = total_iters
    result.restarts = total_restarts
    result.history = history
    result.telemetry = telemetry
    result.scheme = f"{result.scheme}[s={label}]"
    result.solver = "adaptive_sstep_gmres"
    return result
