"""GMRES-based iterative refinement (GMRES-IR) over a low-precision
inner solve.

The classical three-precision IR loop (Carson & Higham), specialized to
this library's storage policies: the *inner* s-step GMRES runs with its
Krylov basis stored — and charged — at a low-precision policy
(``SolverOptions(precision=...)``, typically fp32: half the panel bytes
of every orthogonalization kernel), while the *outer* loop computes the
true residual, the convergence test and the solution update in fp64:

    repeat:  r = b - A x          (fp64, one SpMV + axpy)
             solve A d ~= r       (inner s-step GMRES, low precision)
             x = x + d            (fp64)

Low-precision storage floors the inner solve's attainable residual near
``eps_storage``, but IR restarts it from a *fresh fp64 residual* each
time, so every refinement recovers another ``~log10(1/inner_tol)``
digits until the fp64 working precision of the outer recurrence is
reached — fp32 storage with fp64-level final backward error, the
acceptance claim of ``experiments/precision_stability.py``.

The refinement trigger reuses the sketched-solve diagnostics: inner
solves run ``solve_mode="sketched"`` by default, and when a returned
``basis_condition_max`` / ``residual_gap_max`` crosses its threshold
the loop stops trusting deeper inner convergence — it loosens the inner
tolerance (the unreliable digits were wasted synchronizations) and
leans on more, cheaper refinements instead.
"""

from __future__ import annotations

import math

import numpy as np

from repro.config import DEFAULT_RESTART, DEFAULT_STEP_SIZE, DEFAULT_TOL
from repro.distla import blas as dblas
from repro.exceptions import ConfigurationError
from repro.krylov.gmres import _explicit_residual
from repro.krylov.result import ConvergenceHistory, SolveResult
from repro.krylov.options import OPTION_FIELD_NAMES, SolverOptions
from repro.krylov.simulation import Simulation
from repro.krylov.sstep_gmres import sstep_gmres
from repro.obs.telemetry import SolveTelemetry
from repro.ortho.base import BlockOrthoScheme
from repro.precision.policy import PrecisionPolicy, resolve_policy
from repro.precond.base import Preconditioner

#: Diagnostics thresholds past which an inner solve's convergence is no
#: longer trusted (cf. the residual-gap analysis of arXiv:2409.03079).
DEFAULT_COND_TRIGGER = 1.0e8
DEFAULT_GAP_TRIGGER = 1.0e-4


def gmres_ir(sim: Simulation, b: np.ndarray,
             x0: np.ndarray | None = None, *,
             precision: "PrecisionPolicy | str | None" = "fp32",
             tol: float = DEFAULT_TOL, max_refinements: int = 40,
             inner_tol: float | None = None,
             inner_maxiter: int = 10_000,
             s: int = DEFAULT_STEP_SIZE, restart: int = DEFAULT_RESTART,
             scheme: BlockOrthoScheme | None = None,
             precond: Preconditioner | None = None,
             solve_mode: str | None = None,
             cond_trigger: float = DEFAULT_COND_TRIGGER,
             gap_trigger: float = DEFAULT_GAP_TRIGGER,
             options: SolverOptions | None = None,
             **inner_kwargs) -> SolveResult:
    """Solve ``A x = b`` by iterative refinement over low-precision
    s-step GMRES.

    Parameters
    ----------
    precision:
        Storage policy of the inner solves (name or
        :class:`~repro.precision.policy.PrecisionPolicy`; default fp32).
        The outer residual/correction always run fp64.
    tol:
        Outer convergence target on the fp64 relative residual — may be
        far below what a single low-precision solve can reach.
    inner_tol:
        Relative-residual target of each inner solve.  Default:
        ``max(1e-4, 32 * eps_storage)`` — comfortably achievable in the
        storage precision, so inner iterations are never spent fighting
        the storage floor.
    max_refinements:
        Outer iteration cap.
    scheme / s / restart / precond / options / inner_kwargs:
        Forwarded to every inner :func:`sstep_gmres` call.  ``options``
        is an optional :class:`~repro.krylov.options.SolverOptions`
        base for the inner solves; ``precision`` (this function's
        contract) always overrides its precision field, and absent an
        explicit ``solve_mode`` the inner solves default to
        ``"sketched"`` so the basis-condition and residual-gap monitors
        stay live — they are this loop's refinement trigger.  Loose
        per-knob ``SolverOptions`` fields in ``inner_kwargs`` are still
        accepted (folded into the options value without deprecation
        noise).
    cond_trigger / gap_trigger:
        When an inner solve reports ``basis_condition_max > cond_trigger``
        or ``residual_gap_max > gap_trigger``, subsequent inner solves run
        with a 10x looser tolerance (never tighter than the current one,
        capped at 0.25 — a correction four times smaller than the
        residual still contracts): past those thresholds the extra inner
        digits are unreliable, and refinement steps are the cheaper way
        to buy accuracy.

    Returns a :class:`SolveResult`: ``iterations`` counts inner Krylov
    iterations across all refinements, ``history`` records the fp64
    outer residual at each refinement boundary, and ``diagnostics``
    carries the IR bookkeeping (refinement count, trigger events, the
    per-refinement inner summaries).
    """
    if max_refinements < 1:
        raise ConfigurationError(
            f"max_refinements must be >= 1, got {max_refinements}")
    policy = resolve_policy(precision)
    knob_kwargs = {k: inner_kwargs.pop(k) for k in tuple(inner_kwargs)
                   if k in OPTION_FIELD_NAMES}
    if options is not None:
        if knob_kwargs:
            raise ConfigurationError(
                "pass inner-solver knobs inside options=SolverOptions(...), "
                f"not alongside it: {sorted(knob_kwargs)}")
        inner_options = options.replace(
            precision=policy,
            **({} if solve_mode is None else {"solve_mode": solve_mode}))
    else:
        inner_options = SolverOptions(
            solve_mode="sketched" if solve_mode is None else solve_mode,
            precision=policy, **knob_kwargs)
    if inner_tol is None:
        inner_tol = max(1.0e-4, 32.0 * policy.storage_eps)
    inner_tol = float(inner_tol)
    tracer = sim.tracer
    snap = tracer.snapshot()

    b = np.asarray(b, dtype=np.float64).ravel()
    b_vec = sim.vector_from(b)
    x_vec = sim.vector_from(x0 if x0 is not None else np.zeros(sim.n))
    r_vec = sim.zeros(1)

    history = ConvergenceHistory()
    beta0 = None
    rel_res = math.inf
    converged = False
    refinements = 0
    triggers = 0
    total_iters = 0
    total_restarts = 0
    stalled = False
    inner_summaries: list[dict] = []
    inner_scheme_name = "" if scheme is None else scheme.name
    prev_rel = math.inf
    no_progress = 0
    tel = SolveTelemetry()  # one CycleRecord per refinement step

    while refinements < max_refinements:
        gamma = _explicit_residual(sim, b_vec, x_vec, r_vec)
        if beta0 is None:
            beta0 = gamma if gamma > 0 else 1.0
        rel_res = gamma / beta0
        history.record(total_iters, rel_res)
        if rel_res <= tol:
            converged = True
            break
        if rel_res >= 0.9 * prev_rel:
            # Essentially no reduction: the inner solver has hit its
            # (precision- or spectrum-imposed) floor; two in a row and
            # more refinements cannot help.  Slow-but-geometric rates
            # (contraction 0.5-0.9) are NOT a stall — they converge
            # within the max_refinements budget and must run on.
            no_progress += 1
            if no_progress >= 2:
                stalled = True
                break
        else:
            no_progress = 0
        prev_rel = rel_res

        # Inner solve for the correction A d ~= r, in low precision.
        tel.begin_cycle(refinements, mode=f"ir/{policy.name}")
        tel.note_residual(rel_res)
        rhs = r_vec.to_global()[:, 0]
        inner = sstep_gmres(sim, rhs, s=s, restart=restart, tol=inner_tol,
                            maxiter=inner_maxiter, scheme=scheme,
                            precond=precond, options=inner_options,
                            **inner_kwargs)
        total_iters += inner.iterations
        total_restarts += inner.restarts
        inner_scheme_name = inner.scheme
        diag = inner.diagnostics
        # A correction is usable only when the inner solve actually
        # reduced its own residual: applying a diverged correction
        # (rel >= 1) would amplify the outer residual instead.
        usable = (math.isfinite(inner.relative_residual)
                  and inner.relative_residual < 1.0)
        inner_summaries.append({
            "inner_tol": inner_tol,
            "iterations": inner.iterations,
            "relative_residual": inner.relative_residual,
            "applied": usable,
            "basis_condition_max": diag.get("basis_condition_max"),
            "residual_gap_max": diag.get("residual_gap_max"),
        })
        for fld, key in (("basis_condition", "basis_condition_max"),
                         ("residual_gap", "residual_gap_max")):
            if diag.get(key) is not None:
                tel.observe(fld, diag[key])
        if (not usable
                or diag.get("basis_condition_max", 0.0) > cond_trigger
                or diag.get("residual_gap_max", 0.0) > gap_trigger):
            # The monitors say the low-precision basis saturated: deeper
            # inner convergence is numerical fiction.  Loosen the inner
            # target (never tighten) and rely on more refinements.
            triggers += 1
            inner_tol = min(inner_tol * 10.0, 0.25)
            tel.event("trigger:loosen_inner_tol")
        if usable:
            # x += d, in fp64 on the simulated machine.
            d_vec = sim.vector_from(inner.x)
            with tracer.phase("other"):
                dblas.lincomb(x_vec, [(1.0, x_vec), (1.0, d_vec)])
        else:
            no_progress += 1
            tel.event("correction_skipped")
            if no_progress >= 2:
                stalled = True
                tel.end_cycle(total_iters)
                break
        refinements += 1
        tel.end_cycle(total_iters)

    totals = tracer.since(snap)
    times = dict(totals.by_phase)
    times["total"] = totals.clock
    ortho_breakdown = {k[1]: v for k, v in totals.by_kernel.items()
                       if k[0] == "ortho"}
    sync_count = sum(c for (ph, kern), c in totals.counts.items()
                     if kern == "allreduce")
    return SolveResult(
        x=x_vec.to_global()[:, 0], converged=converged,
        iterations=total_iters, restarts=total_restarts,
        relative_residual=float(rel_res), history=history, times=times,
        ortho_breakdown=ortho_breakdown, sync_count=sync_count,
        solver="gmres-ir",
        scheme=inner_scheme_name,
        stalled=stalled,
        diagnostics={
            "precision": policy.name,
            "storage": policy.storage,
            "refinements": refinements,
            "refinement_triggers": triggers,
            "inner_tol_final": inner_tol,
            "inner_solves": inner_summaries,
        },
        telemetry=tel.to_list(),
        metrics=sim.metrics_doc())
