"""Standard restarted GMRES(m) — the paper's baseline ("GMRES + CGS2").

One new Krylov vector per iteration, orthogonalized column-wise with
CGS2 (or MGS), Arnoldi relation maintained directly, residual estimated
per iteration through Givens rotations — so convergence can stop at any
iteration (the paper's Table III baseline stops at 60251, not a multiple
of anything).
"""

from __future__ import annotations

import numpy as np
import scipy.linalg

from repro.config import DEFAULT_RESTART, DEFAULT_TOL
from repro.distla import blas as dblas
from repro.exceptions import ConfigurationError
from repro.krylov.mpk import PreconditionedOperator
from repro.krylov.result import ConvergenceHistory, SolveResult
from repro.krylov.simulation import Simulation
from repro.ortho.cgs import cgs2_append, mgs_append
from repro.precond.base import Preconditioner


def _givens(a: float, b: float) -> tuple[float, float]:
    """Stable Givens rotation coefficients (c, s) zeroing b against a."""
    if b == 0.0:
        return 1.0, 0.0
    if abs(b) > abs(a):
        t = a / b
        s = 1.0 / np.sqrt(1.0 + t * t)
        return t * s, s
    t = b / a
    c = 1.0 / np.sqrt(1.0 + t * t)
    return c, t * c


def _explicit_residual(sim: Simulation, b_vec, x_vec, scratch) -> float:
    """``r = b - A x`` into ``scratch``; returns ||r|| (costed)."""
    with sim.tracer.phase("spmv"):
        sim.matrix.matvec(x_vec, out=scratch)
    with sim.tracer.phase("other"):
        dblas.lincomb(scratch, [(1.0, b_vec), (-1.0, scratch)])
        beta = float(dblas.column_norms(scratch)[0])
    return beta


def gmres(sim: Simulation, b: np.ndarray, x0: np.ndarray | None = None, *,
          restart: int = DEFAULT_RESTART, tol: float = DEFAULT_TOL,
          maxiter: int = 100_000, precond: Preconditioner | None = None,
          variant: str = "cgs2") -> SolveResult:
    """Solve ``A x = b`` with restarted GMRES on the simulated machine.

    Parameters mirror the paper's setup: ``restart`` = m (60), ``tol`` =
    relative residual reduction (1e-6), right preconditioning.
    ``variant`` selects the orthogonalizer: "cgs2" (baseline) or "mgs".

    Returns a :class:`SolveResult` whose ``times`` are modeled seconds.
    """
    if variant not in ("cgs2", "mgs"):
        raise ConfigurationError(f"unknown GMRES variant {variant!r}")
    append = cgs2_append if variant == "cgs2" else mgs_append
    tracer = sim.tracer
    backend = sim.backend
    snap = tracer.snapshot()

    if precond is not None and not precond.is_setup:
        precond.setup(sim.matrix)
    op = PreconditionedOperator(sim.matrix, precond)

    b = np.asarray(b, dtype=np.float64).ravel()
    b_vec = sim.vector_from(b)
    x_vec = sim.vector_from(x0 if x0 is not None
                            else np.zeros(sim.n))
    r_vec = sim.zeros(1)
    basis = sim.zeros(restart + 1)
    history = ConvergenceHistory()

    beta0 = None
    iters = 0
    restarts = 0
    converged = False
    rel_res = np.inf

    while iters < maxiter and not converged:
        beta = _explicit_residual(sim, b_vec, x_vec, r_vec)
        if beta0 is None:
            beta0 = beta if beta > 0 else 1.0
            history.record(0, beta / beta0)
        rel_res = beta / beta0
        if rel_res <= tol:
            converged = True
            break
        with tracer.phase("ortho"):
            dblas.copy_into(basis.view_cols(0), r_vec)
            backend.scale_cols(basis.view_cols(0), np.array([1.0 / beta]))
        # Givens-rotated least-squares state
        h_tri = np.zeros((restart + 1, restart))
        cs = np.zeros(restart)
        sn = np.zeros(restart)
        g = np.zeros(restart + 1)
        g[0] = beta
        j_done = 0
        for j in range(1, restart + 1):
            op.apply(basis.view_cols(j - 1), basis.view_cols(j))
            with tracer.phase("ortho"):
                h = append(backend, basis, j)
            backend.host_flops(6.0 * j)
            # apply accumulated rotations to the new column
            col = h.copy()
            for i in range(j - 1):
                tmp = cs[i] * col[i] + sn[i] * col[i + 1]
                col[i + 1] = -sn[i] * col[i] + cs[i] * col[i + 1]
                col[i] = tmp
            c, s = _givens(col[j - 1], col[j])
            cs[j - 1], sn[j - 1] = c, s
            col[j - 1] = c * col[j - 1] + s * col[j]
            col[j] = 0.0
            h_tri[: j + 1, j - 1] = col
            g[j] = -s * g[j - 1]
            g[j - 1] = c * g[j - 1]
            iters += 1
            j_done = j
            rel_res = abs(g[j]) / beta0
            history.record(iters, rel_res)
            if rel_res <= tol or iters >= maxiter:
                break
        # solve the rotated triangular system and update the solution
        y = scipy.linalg.solve_triangular(
            h_tri[:j_done, :j_done], g[:j_done], lower=False)
        backend.host_flops(float(j_done) ** 2)
        tmp = sim.zeros(1)
        z = sim.zeros(1)
        with tracer.phase("other"):
            dblas.matvec_small(basis.view_cols(slice(0, j_done)),
                               y[:, np.newaxis], tmp)
        op.apply_inverse_precond(tmp, z)
        with tracer.phase("other"):
            dblas.lincomb(x_vec, [(1.0, x_vec), (1.0, z)])
        restarts += 1
        if rel_res <= tol:
            # verified against the explicit residual at loop top
            continue

    totals = tracer.since(snap)
    times = dict(totals.by_phase)
    times["total"] = totals.clock
    ortho_breakdown = {k[1]: v for k, v in totals.by_kernel.items()
                       if k[0] == "ortho"}
    sync_count = sum(c for (ph, kern), c in totals.counts.items()
                     if kern == "allreduce")
    return SolveResult(
        x=x_vec.to_global()[:, 0], converged=converged, iterations=iters,
        restarts=restarts, relative_residual=float(rel_res),
        history=history, times=times, ortho_breakdown=ortho_breakdown,
        sync_count=sync_count, solver="gmres", scheme=variant,
        metrics=sim.metrics_doc())
