"""The :class:`Simulation` bundle: matrix + machine + communicator + backend.

One object carries everything a solver needs to run *and* be accounted on
the (simulated or real-process) cluster.  Constructing one from a scipy
matrix is the library's main entry point::

    sim = Simulation(laplace2d(200), ranks=24, machine=summit())
    result = sstep_gmres(sim, b, scheme=TwoStageScheme(big_step=60))
    print(sim.tracer.report())

The ``backend`` argument selects the communicator implementation (see
:mod:`repro.parallel.api`): ``"sim"`` (default) models every cost,
``"mp"`` runs each rank as a real OS process and measures wall clock —
the identical solver code runs unchanged on either.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.distla.multivector import DistMultiVector
from repro.distla.spmatrix import DistSparseMatrix
from repro.exceptions import ShapeError
from repro.ortho.backend import DistBackend
from repro.parallel.api import make_comm
from repro.parallel.machine import MachineSpec
from repro.parallel.partition import Partition
from repro.parallel.tracing import Tracer


class Simulation:
    """Distributed problem instance on a modeled (or real-process) machine.

    Parameters
    ----------
    a:
        Square scipy sparse matrix (the operator).
    ranks:
        Number of devices (one MPI-style rank per device).
    machine:
        Hardware model; defaults to Summit (6 V100/node).
    tracer:
        Optional shared tracer (e.g. to accumulate across solves).  For
        ``backend="sim"`` it holds modeled seconds; for ``backend="mp"``
        it holds measured wall clock (the modeled twin lives at
        ``sim.comm.modeled``).
    partition:
        Optional explicit row partition; defaults to balanced block rows.
    engine:
        Kernel-execution engine (``"loop"`` / ``"batched"``) bound to this
        simulation's communicator and backend; ``None`` defers to the
        process default (:func:`repro.config.get_engine`).  Both engines
        charge identical modeled costs, so this only changes host wall
        time, never the simulated numbers.
    backend:
        Communicator backend, ``"sim"`` (modeled, default) or ``"mp"``
        (real worker processes).  With ``"mp"``, :meth:`close` the
        simulation (or use it as a context manager) to tear the workers
        down; results are bit-identical to ``"sim"``.
    spans:
        When True, record structured
        :class:`~repro.parallel.tracing.SpanEvent` streams on every
        timeline this simulation owns (see :meth:`enable_spans`), for
        the :mod:`repro.obs` exporters and drift monitor.  Off by
        default — the disabled path costs one pointer test per charge.
    metrics:
        When True, attach a
        :class:`~repro.obs.metrics.MetricsRegistry` to the modeled
        timeline (see :meth:`enable_metrics`): per-kernel flop/byte
        counters, arithmetic intensity and roofline utilization against
        this machine's peaks.  Off by default — same one-pointer-test
        disabled path as spans; charges are identical either way.
    """

    def __init__(self, a: sp.spmatrix, ranks: int = 4,
                 machine: MachineSpec | None = None,
                 tracer: Tracer | None = None,
                 partition: Partition | None = None,
                 engine: str | None = None,
                 backend: str = "sim",
                 spans: bool = False,
                 metrics: bool = False) -> None:
        n = a.shape[0]
        if partition is None:
            partition = Partition(n, ranks)
        elif partition.n_global != n or partition.ranks != ranks:
            raise ShapeError("partition inconsistent with matrix/ranks")
        self.comm = make_comm(backend, machine, ranks, tracer=tracer,
                              engine=engine)
        self.machine = self.comm.machine
        self.tracer = self.comm.tracer
        self.engine = engine
        self.partition = partition
        self.metrics = None
        self.matrix = DistSparseMatrix(a, partition, self.comm)
        self.backend = DistBackend(self.comm, engine=engine)
        if spans:
            self.enable_spans()
        if metrics:
            self.enable_metrics()
        # setup (partition/halo analysis) is not solver time
        self.comm.mark()

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self.partition.n_global

    @property
    def ranks(self) -> int:
        return self.partition.ranks

    @property
    def comm_backend(self) -> str:
        """Which communicator backend this simulation runs on."""
        return self.comm.backend

    def vector_from(self, arr: np.ndarray, storage: str = "fp64",
                    accumulate: str = "fp64") -> DistMultiVector:
        """Scatter a global array into a distributed (multi)vector.

        ``storage`` selects the precision the values are stored (and
        charged) at — see :mod:`repro.precision`.
        """
        return DistMultiVector.from_global(arr, self.partition, self.comm,
                                           storage=storage,
                                           accumulate=accumulate)

    def zeros(self, k: int = 1, storage: str = "fp64",
              accumulate: str = "fp64") -> DistMultiVector:
        return DistMultiVector.zeros(self.partition, self.comm, k,
                                     storage=storage, accumulate=accumulate)

    def ones_solution_rhs(self) -> np.ndarray:
        """RHS such that the solution is all-ones (paper Section VIII:
        'We generated the right-hand-side vector such that the solution is
        a vector of all ones')."""
        return np.asarray(self.matrix.to_scipy()
                          @ np.ones(self.n)).ravel()

    def enable_spans(self) -> None:
        """Start recording span streams on this simulation's timelines.

        Covers the primary tracer and, on ``backend="mp"``, the
        communicator's modeled twin — so one mp solve yields both the
        ``measured`` and the ``modeled`` track of a Chrome trace export
        (:func:`repro.obs.export.export_chrome_trace`).  Idempotent.
        """
        self.tracer.enable_spans()
        modeled = getattr(self.comm, "modeled", None)
        if modeled is not None:
            modeled.enable_spans()

    def enable_metrics(self) -> None:
        """Attach a metrics registry to the *modeled* timeline.

        Creates one :class:`~repro.obs.metrics.MetricsRegistry` (at
        ``sim.metrics``), points the modeled tracer's charge feed at it
        and rebinds the communicator's cost model so every local-kernel
        costing reports its (flops, bytes) shape.  Idempotent.  The
        registry accumulates across every solve on this simulation;
        :meth:`metrics_doc` snapshots it.
        """
        if self.metrics is not None:
            return
        from dataclasses import replace

        from repro.obs.metrics import MetricsRegistry

        self.metrics = MetricsRegistry(self.machine, self.ranks)
        modeled = getattr(self.comm, "modeled", None)
        (modeled if modeled is not None else self.tracer
         ).attach_metrics(self.metrics)
        self.comm.cost = replace(self.comm.cost, metrics=self.metrics)

    def metrics_doc(self) -> dict:
        """JSON snapshot of the metrics registry ({} when disabled).

        What solvers stamp onto ``SolveResult.metrics``.
        """
        return {} if self.metrics is None else (
            self.metrics.snapshot().to_dict())

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release communicator resources (worker processes, shared
        memory).  No-op on the ``"sim"`` backend; idempotent."""
        self.comm.close()

    def __enter__(self) -> "Simulation":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"Simulation(n={self.n}, ranks={self.ranks}, "
                f"machine={self.machine.name!r}, "
                f"backend={self.comm.backend!r})")
