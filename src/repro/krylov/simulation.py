"""The :class:`Simulation` bundle: matrix + machine + communicator + backend.

One object carries everything a solver needs to run *and* be accounted on
the simulated cluster.  Constructing one from a scipy matrix is the
library's main entry point::

    sim = Simulation(laplace2d(200), ranks=24, machine=summit())
    result = sstep_gmres(sim, b, scheme=TwoStageScheme(big_step=60))
    print(sim.tracer.report())
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.distla.multivector import DistMultiVector
from repro.distla.spmatrix import DistSparseMatrix
from repro.exceptions import ShapeError
from repro.ortho.backend import DistBackend
from repro.parallel.communicator import SimComm
from repro.parallel.machine import MachineSpec, summit
from repro.parallel.partition import Partition
from repro.parallel.tracing import Tracer


class Simulation:
    """Distributed problem instance on a modeled machine.

    Parameters
    ----------
    a:
        Square scipy sparse matrix (the operator).
    ranks:
        Number of simulated devices (one MPI rank per device).
    machine:
        Hardware model; defaults to Summit (6 V100/node).
    tracer:
        Optional shared tracer (e.g. to accumulate across solves).
    partition:
        Optional explicit row partition; defaults to balanced block rows.
    engine:
        Kernel-execution engine (``"loop"`` / ``"batched"``) bound to this
        simulation's communicator and backend; ``None`` defers to the
        process default (:func:`repro.config.get_engine`).  Both engines
        charge identical modeled costs, so this only changes host wall
        time, never the simulated numbers.
    """

    def __init__(self, a: sp.spmatrix, ranks: int = 4,
                 machine: MachineSpec | None = None,
                 tracer: Tracer | None = None,
                 partition: Partition | None = None,
                 engine: str | None = None) -> None:
        machine = machine if machine is not None else summit()
        n = a.shape[0]
        if partition is None:
            partition = Partition(n, ranks)
        elif partition.n_global != n or partition.ranks != ranks:
            raise ShapeError("partition inconsistent with matrix/ranks")
        self.machine = machine
        self.tracer = tracer if tracer is not None else Tracer()
        self.engine = engine
        self.comm = SimComm(machine, ranks, self.tracer, engine=engine)
        self.partition = partition
        self.matrix = DistSparseMatrix(a, partition, self.comm)
        self.backend = DistBackend(self.comm, engine=engine)

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self.partition.n_global

    @property
    def ranks(self) -> int:
        return self.partition.ranks

    def vector_from(self, arr: np.ndarray, storage: str = "fp64",
                    accumulate: str = "fp64") -> DistMultiVector:
        """Scatter a global array into a distributed (multi)vector.

        ``storage`` selects the precision the values are stored (and
        charged) at — see :mod:`repro.precision`.
        """
        return DistMultiVector.from_global(arr, self.partition, self.comm,
                                           storage=storage,
                                           accumulate=accumulate)

    def zeros(self, k: int = 1, storage: str = "fp64",
              accumulate: str = "fp64") -> DistMultiVector:
        return DistMultiVector.zeros(self.partition, self.comm, k,
                                     storage=storage, accumulate=accumulate)

    def ones_solution_rhs(self) -> np.ndarray:
        """RHS such that the solution is all-ones (paper Section VIII:
        'We generated the right-hand-side vector such that the solution is
        a vector of all ones')."""
        return np.asarray(self.matrix.to_scipy()
                          @ np.ones(self.n)).ravel()

    def __repr__(self) -> str:
        return (f"Simulation(n={self.n}, ranks={self.ranks}, "
                f"machine={self.machine.name!r})")
