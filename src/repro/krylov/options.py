"""Solver configuration: :class:`SolverOptions` and its mode constants.

:func:`repro.krylov.sstep_gmres.sstep_gmres` historically grew one
keyword argument per knob (``solve_mode``, ``mpk_mode``, ``precision``,
sketch parameters, adaptive thresholds...).  They now travel together in
one immutable :class:`SolverOptions` value::

    opts = SolverOptions(solve_mode="sketched", mpk_mode="ca")
    result = sstep_gmres(sim, b, s=5, restart=30, options=opts)

The old kwargs still work through a shim that emits
``DeprecationWarning``; structural parameters that shape the iteration
itself (``s``, ``restart``, ``tol``, ``maxiter``, ``scheme``, ``basis``,
``precond``, ``observer``) stay first-class arguments.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import TYPE_CHECKING

from repro.exceptions import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.precision.policy import PrecisionPolicy

#: Valid ``solve_mode`` values.  ``"adaptive"`` starts sketched (so the
#: basis-condition / residual-gap monitors are live) and switches to the
#: cheaper classical coordinate solve — and back — as the diagnostics
#: cross their thresholds.
SOLVE_MODES = ("classical", "sketched", "adaptive")

#: Valid ``mpk_mode`` values: the three kernel modes plus ``"auto"``
#: (communication-avoiding whenever the preconditioner composes,
#: standard otherwise — the fallback the paper's Trilinos setting
#: hard-codes).  ``auto`` escalates to the overlapped PA2 kernel when
#: the cost model predicts the deep-ring exchange hides entirely behind
#: the first owned-rows SpMV (see
#: :func:`repro.krylov.mpk.overlap_ring_hides`); on latency-bound
#: machines where the ring pokes out of that window it stays on plain
#: ``"ca"``.
MPK_SOLVER_MODES = ("standard", "ca", "ca_overlap", "auto")

#: Default leave-one-out distortion above which a sketched solve redraws
#: its embedding at the next cycle.  Calibration note: the split test
#: evaluates *half*-sized embeddings, so at solver sketch sizes (~4x
#: oversampling, 2x per half) healthy estimates land around 1-3, not
#: near zero — the default only fires when the held-out spectrum is far
#: outside that band (an unlucky draw stretching some direction several
#: fold).  Lower it for tighter certification, or pass ``None`` to
#: disable the automatic redraw.
DEFAULT_RESKETCH_THRESHOLD = 10.0


@dataclass(frozen=True)
class SolverOptions:
    """Immutable bundle of :func:`sstep_gmres` behaviour knobs.

    Parameters
    ----------
    solve_mode:
        ``"classical"`` minimizes the coordinate least-squares problem
        ``||gamma R e1 - H y||`` — correct while the basis is
        orthonormal.  ``"sketched"`` maintains a sketched basis ``S V``
        alongside the full one and minimizes the *embedded* residual
        ``||S V (rhs - H y)||`` instead (randomized GMRES à la RGS):
        valid for any numerically full-rank basis, e.g. the
        sketch-orthonormal one produced by
        :class:`~repro.ortho.randomized.SketchedTwoStageScheme` with
        ``fused=True``.  The sketched path also emits residual-gap /
        basis-condition diagnostics into ``SolveResult.diagnostics``.
        ``"adaptive"`` switches between the two at restart boundaries.
    mpk_mode:
        How the matrix powers kernel communicates: ``"standard"`` (one
        halo exchange per basis column — the paper's and Trilinos'
        setting), ``"ca"`` (ghost-zone communication-avoiding kernel:
        ONE aggregated deep-halo exchange per s-panel, redundant local
        work on a shrinking ghost region; raises
        :class:`~repro.exceptions.ConfigurationError` when the
        preconditioner has no finite ghost closure), ``"ca_overlap"``
        (the PA2 variant of ``"ca"``: eager depth-1 shell, deep ring
        posted nonblocking and overlapped with the first local SpMV;
        unpreconditioned operators only), or ``"auto"`` (CA when the
        preconditioner composes, standard fallback otherwise; picks
        ``"ca_overlap"`` over ``"ca"`` when
        :func:`repro.krylov.mpk.overlap_ring_hides` predicts the deep
        ring fully hides behind the first owned-rows SpMV — true on
        bandwidth-rich machines, false once network latency inflates
        the ring's fixed cost past the compute window).
        All kernels generate bit-identical bases; only the
        communication profile — and hence the modeled time — differs.
    comm_overlap:
        Opt-in overlap of the *solver-level* fused reductions: the
        pipelined/low-synch schemes post the partial fused dot products
        whose inputs are already final at the end of the previous push
        and overlap them with the next operator application
        (:meth:`post_ifused_allreduce_sum` / ``wait``).  Off by default
        because it changes the collective *count* profile (two smaller
        reductions per iteration instead of one fused one) that the
        communication-budget tests pin down; numerical results are
        bit-identical either way.
    precision:
        A :class:`~repro.precision.policy.PrecisionPolicy` (or
        registered name, e.g. ``"fp32"``) for the Krylov basis: the
        basis is stored — and its panel traffic charged — at
        ``policy.storage``, local reductions accumulate per
        ``policy.accumulate``, and when no ``scheme`` is given a
        ``policy.gram != "fp64"`` selects the mixed-precision two-stage
        scheme.  The right-hand side, iterate and residual always stay
        fp64; pair low-precision storage with
        :func:`repro.krylov.ir.gmres_ir` to recover fp64-level backward
        error.
    sketch_operator / sketch_oversample / sketch_seed:
        Sketch family, embedding-size override and base seed for the
        sketched solve path (ignored in classical mode).  When the
        scheme exposes :attr:`~repro.ortho.base.BlockOrthoScheme.
        basis_sketch`, its sketch is reused and these knobs are
        irrelevant.
    resketch_threshold:
        Leave-one-out distortion above which a sketched/adaptive solve
        *redraws* its embedding at the next restart cycle (operator
        re-derived from ``(seed, cycle, resketch_count)``), instead of
        only reporting the estimate; ``None`` disables the automatic
        re-sketch.  ``diagnostics["resketch_count"]`` records how often
        it fired.
    adaptive_cond_threshold / adaptive_gap_threshold:
        Switching thresholds for ``solve_mode="adaptive"``: the solver
        drops from sketched to classical once a cycle's basis-condition
        estimate stays below ``adaptive_cond_threshold`` AND its
        residual gap below ``adaptive_gap_threshold`` (default
        ``sqrt(eps)``), and escalates back to sketched as soon as the
        gap crosses the threshold.  Requires a scheme that actually
        orthogonalizes (not the fused RGS-contract schemes, whose bases
        are only sketch-orthonormal and never valid for the classical
        coordinate solve).
    """

    solve_mode: str = "classical"
    mpk_mode: str = "standard"
    comm_overlap: bool = False
    precision: "PrecisionPolicy | str | None" = None
    sketch_operator: str = "sparse"
    sketch_oversample: int | None = None
    sketch_seed: int | None = None
    resketch_threshold: float | None = field(
        default=DEFAULT_RESKETCH_THRESHOLD)
    adaptive_cond_threshold: float = 1.0e6
    adaptive_gap_threshold: float | None = None

    def __post_init__(self) -> None:
        if self.solve_mode not in SOLVE_MODES:
            raise ConfigurationError(
                f"unknown solve_mode {self.solve_mode!r}; expected one of "
                f"{SOLVE_MODES}")
        if self.mpk_mode not in MPK_SOLVER_MODES:
            raise ConfigurationError(
                f"unknown mpk_mode {self.mpk_mode!r}; expected one of "
                f"{MPK_SOLVER_MODES}")

    def replace(self, **changes) -> "SolverOptions":
        """Copy with ``changes`` applied (re-validates)."""
        import dataclasses
        return dataclasses.replace(self, **changes)


#: Names the deprecated kwarg shim accepts (= the dataclass fields).
OPTION_FIELD_NAMES = frozenset(f.name for f in fields(SolverOptions))
