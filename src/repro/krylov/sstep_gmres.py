"""s-step GMRES with pluggable block orthogonalization (paper Fig. 1).

Per restart cycle of ``m`` steps the solver alternates the matrix powers
kernel (``s`` operator applications, no global reductions) with the
configured :class:`~repro.ortho.base.BlockOrthoScheme` — BCGS2+CholQR2
(the original), BCGS-PIP2 (Section IV-C), or the two-stage scheme
(Section V).  The Hessenberg matrix is recovered from the accumulated
``R`` factor and the change-of-basis matrix (line 14: ``H = R T R^{-1}``)
whenever the scheme reports final ``R`` columns, which is also the only
place convergence may be tested — hence the iteration counts in the
paper's tables quantize to multiples of ``s`` (one-stage) or ``bs``
(two-stage).

``solve_mode="sketched"`` turns the same loop into a *randomized* GMRES
(à la randomized Gram-Schmidt GMRES, arXiv:2503.16717): a sketched basis
``S V`` is maintained alongside the full one and the small least-squares
problem is solved in sketch space
(:func:`repro.krylov.hessenberg.sketched_least_squares`), so the basis
only needs to be numerically full rank — explicit l2 orthogonality is
never relied on.  Pair it with
:class:`~repro.ortho.randomized.SketchedTwoStageScheme` ``(fused=True)``,
whose single-collective stage passes produce exactly such a
sketch-orthonormal basis (and whose maintained basis sketch the solver
reuses for free).
"""

from __future__ import annotations

import warnings

import numpy as np

import math

from repro.config import (
    DEFAULT_RESTART,
    DEFAULT_SEED,
    DEFAULT_STEP_SIZE,
    DEFAULT_TOL,
    EPS,
)
from repro.distla import blas as dblas
from repro.exceptions import CholeskyBreakdownError, ConfigurationError
from repro.krylov.basis import KrylovBasis, MonomialBasis, NewtonBasis
from repro.krylov.gmres import _explicit_residual
from repro.krylov.hessenberg import (
    assemble_hessenberg_mixed,
    least_squares_residual,
    sketched_least_squares,
)
from repro.krylov.mpk import (
    MatrixPowersKernel,
    PreconditionedOperator,
    resolve_mpk_mode,
)
from repro.krylov.options import (  # noqa: F401  (re-exported for back-compat)
    DEFAULT_RESKETCH_THRESHOLD,
    MPK_SOLVER_MODES,
    OPTION_FIELD_NAMES,
    SOLVE_MODES,
    SolverOptions,
)
from repro.krylov.result import ConvergenceHistory, SolveResult
from repro.krylov.simulation import Simulation
from repro.obs.telemetry import SolveTelemetry
from repro.ortho.base import BlockOrthoScheme, OrthoObserver
from repro.ortho.bcgs_pip import BCGSPIP2Scheme
from repro.precision.kernels import MixedPrecisionTwoStageScheme
from repro.precision.dtypes import word_bytes as _bytes_per_word
from repro.precision.policy import resolve_policy
from repro.precond.base import Preconditioner
from repro.sketch import (
    canonical_family,
    derive_seed,
    leave_one_out_distortion,
    make_operator,
    sketch_rows,
)

def _resolve_options(options: SolverOptions | None,
                     legacy: dict) -> SolverOptions:
    """Fold the deprecated per-knob kwargs into a :class:`SolverOptions`.

    The three outcomes: clean ``options`` (or none → defaults) passes
    through; legacy kwargs alone build an equivalent options value and
    warn; mixing both is a :class:`ConfigurationError` because silently
    preferring either side would hide a bug at the call site.
    """
    if legacy:
        unknown = sorted(set(legacy) - OPTION_FIELD_NAMES)
        if unknown:
            raise TypeError(
                f"sstep_gmres() got unexpected keyword argument(s) "
                f"{unknown}")
        if options is not None:
            raise ConfigurationError(
                "pass options=SolverOptions(...) OR the deprecated "
                f"per-knob keyword arguments {sorted(legacy)}, not both")
        warnings.warn(
            f"passing {sorted(legacy)} directly to sstep_gmres() is "
            "deprecated; bundle them as "
            "options=SolverOptions(...) instead",
            DeprecationWarning, stacklevel=3)
        return SolverOptions(**legacy)
    return SolverOptions() if options is None else options


class _SolveSketch:
    """Per-solve sketch context for ``solve_mode="sketched"``.

    Maintains the sketched basis ``S V`` of the *final* columns of the
    current cycle.  When the orthogonalization scheme already carries a
    basis sketch (:attr:`BlockOrthoScheme.basis_sketch` — the
    randomized schemes), that sketch is reused and the solve path adds
    ZERO collectives; otherwise newly-finalized columns are sketched on
    demand — one extra fused-size allreduce per checkpoint, charged to
    the ortho phase like every other reduction the solver issues.

    The operator is derived deterministically from ``(seed, cycle,
    resketch_count)`` so repeated solves reproduce bit-for-bit while
    each restart cycle draws a fresh embedding (reusing one across
    adaptively generated cycles would void the w.h.p. guarantee).  When
    the leave-one-out monitor reports the current embedding cannot be
    certified (:meth:`request_resketch`), ``resketch_count`` bumps and
    the next cycle redraws from the new tuple — and the context stops
    trusting scheme-provided sketches, whose operators it cannot
    redraw, maintaining its own from then on.
    """

    def __init__(self, backend, n: int, width: int, family: str,
                 oversample: int | None, seed: int) -> None:
        self.backend = backend
        self.n = n
        self.width = width
        self.family = canonical_family(family)
        self.oversample = oversample
        self.seed = seed
        self.m_rows = sketch_rows(width, n, family=self.family,
                                  oversample=self.oversample)
        self.resketch_count = 0
        self._resketch_armed = False
        self._op = None
        self._sq = np.zeros((self.m_rows, width))
        self._cols = 0

    def begin_cycle(self, cycle: int) -> None:
        if self._resketch_armed:
            self._resketch_armed = False
            self.resketch_count += 1
        # count 0 derives the historical (seed, cycle) tuple so solves
        # that never re-sketch reproduce pre-resketch results bit-for-bit
        ctx = (("sstep-gmres-solve", cycle) if self.resketch_count == 0
               else ("sstep-gmres-solve", cycle, self.resketch_count))
        self._op = make_operator(self.family, self.n, self.m_rows,
                                 derive_seed(self.seed, *ctx))
        self._sq.fill(0.0)
        self._cols = 0

    def request_resketch(self) -> None:
        """Redraw the embedding at the next cycle boundary (at most one
        bump per cycle, however many checkpoints cross the threshold)."""
        self._resketch_armed = True

    def basis_sketch(self, scheme: BlockOrthoScheme, basis_mv,
                     hi: int) -> np.ndarray:
        """``S V_{1:hi}``, reusing the scheme's sketch when it has one."""
        from_scheme = scheme.basis_sketch
        if (from_scheme is not None and from_scheme.shape[1] >= hi
                and self.resketch_count == 0):
            return from_scheme[:, :hi]
        if hi > self._cols:  # sketch only the newly-finalized columns
            view = self.backend.view(basis_mv, slice(self._cols, hi))
            self._sq[:, self._cols:hi] = self.backend.sketch(view, self._op)
            self._cols = hi
        return self._sq[:, :hi]


def _resolve_basis(basis: str | KrylovBasis) -> KrylovBasis:
    if isinstance(basis, KrylovBasis):
        return basis
    if basis == "monomial":
        return MonomialBasis()
    if basis == "newton":
        return NewtonBasis()
    raise ConfigurationError(
        f"unknown basis {basis!r}; use 'monomial', 'newton', or pass a "
        f"KrylovBasis instance (Chebyshev needs an interval)")


def _panel_bounds(s: int, total_cols: int) -> list[tuple[int, int]]:
    """Column ranges per block: first block s+1 cols (incl. the starting
    vector), then s cols each, clipped to the basis width."""
    bounds = [(0, min(s + 1, total_cols))]
    while bounds[-1][1] < total_cols:
        lo = bounds[-1][1]
        bounds.append((lo, min(lo + s, total_cols)))
    return bounds


def sstep_gmres(sim: Simulation, b: np.ndarray,
                x0: np.ndarray | None = None, *,
                s: int = DEFAULT_STEP_SIZE, restart: int = DEFAULT_RESTART,
                tol: float = DEFAULT_TOL, maxiter: int = 100_000,
                scheme: BlockOrthoScheme | None = None,
                basis: str | KrylovBasis = "monomial",
                precond: Preconditioner | None = None,
                observer: OrthoObserver | None = None,
                options: SolverOptions | None = None,
                **legacy) -> SolveResult:
    """Solve ``A x = b`` with s-step GMRES on the simulated machine.

    Parameters
    ----------
    s:
        Step size (the paper's conservative default is 5).
    restart:
        Restart length m (paper: 60).
    scheme:
        Block orthogonalization; defaults to :class:`BCGSPIP2Scheme`.
        Pass :class:`~repro.ortho.two_stage.TwoStageScheme` for the
        paper's contribution.
    basis:
        Krylov basis polynomial ("monomial" — the paper's choice —
        "newton", or a :class:`KrylovBasis`).
    precond:
        Optional right preconditioner (set up automatically).
    observer:
        Forwarded to the scheme for numerics instrumentation.
    options:
        A :class:`~repro.krylov.options.SolverOptions` bundling every
        behaviour knob — ``solve_mode``, ``mpk_mode``, ``precision``,
        the sketch parameters and the adaptive thresholds; see its
        docstring for the knob-by-knob reference.  Defaults to
        ``SolverOptions()`` (classical coordinate solve, standard MPK,
        fp64 storage).
    **legacy:
        The pre-``SolverOptions`` per-knob keyword arguments
        (``solve_mode=...``, ``mpk_mode=...``, ...).  Still honoured —
        folded into an equivalent options value — but they emit
        ``DeprecationWarning``; combining them with ``options`` raises
        :class:`ConfigurationError`, and anything that is not a
        ``SolverOptions`` field raises :class:`TypeError`.
    """
    opts = _resolve_options(options, legacy)
    if restart < s:
        raise ConfigurationError(f"restart {restart} must be >= step {s}")
    policy = resolve_policy(opts.precision)
    if scheme is None:
        scheme = _default_scheme(policy, restart)
    poly = _resolve_basis(basis)
    snap = sim.tracer.snapshot()

    if precond is not None and not precond.is_setup:
        precond.setup(sim.matrix)
    op = PreconditionedOperator(sim.matrix, precond)
    kernel_mode = resolve_mpk_mode(op, opts.mpk_mode, sim.comm, s,
                                   word_bytes=_bytes_per_word(policy.storage))
    mpk = MatrixPowersKernel(op, poly, mode=kernel_mode)
    gen = _solve_member(sim, b, x0, s=s, restart=restart, tol=tol,
                        maxiter=maxiter, scheme=scheme, poly=poly, op=op,
                        mpk=mpk, kernel_mode=kernel_mode, observer=observer,
                        opts=opts, policy=policy, snap=snap)
    while True:
        try:
            next(gen)
        except StopIteration as stop:
            return stop.value


def _default_scheme(policy, restart: int) -> BlockOrthoScheme:
    """The no-``scheme`` default: dd-Gram policies need the
    mixed-precision two-stage scheme, everything else BCGS-PIP2."""
    return (MixedPrecisionTwoStageScheme(big_step=restart,
                                         gram=policy.gram,
                                         breakdown="shift")
            if policy.gram != "fp64" else BCGSPIP2Scheme())


def _solve_member(sim: Simulation, b: np.ndarray, x0: np.ndarray | None, *,
                  s: int, restart: int, tol: float, maxiter: int,
                  scheme: BlockOrthoScheme, poly: KrylovBasis,
                  op: PreconditionedOperator, mpk: MatrixPowersKernel,
                  kernel_mode: str, observer: OrthoObserver | None,
                  opts: SolverOptions, policy, snap):
    """The full s-step GMRES iteration for ONE right-hand side, as a
    generator that yields at every lockstep barrier.

    Driving the generator to exhaustion IS the scalar solver —
    :func:`sstep_gmres` does exactly that, so the charge stream and
    every numerical value are the unbatched solve's by construction.
    :func:`repro.krylov.block.block_sstep_gmres` instead advances ``b``
    member generators round-robin, one yield per fusion group, under
    :class:`repro.parallel.batch.BatchCharges`.  Yield points delimit
    the units whose kernels fuse across members: the explicit-residual
    pass, cycle setup, each panel's basis extension, each panel's
    orthogonalization/checkpoint, the cycle flush, and the solution
    update.  The member owns ALL its numerical state (basis, scheme,
    factors, polynomial, telemetry); only the operator/preconditioner —
    stateless per apply — may be shared.

    Returns (via ``StopIteration.value``) the member's
    :class:`SolveResult`; ``times`` are read from ``tracer.since(snap)``
    — in a batch this is the shared timeline up to the member's own
    exit.
    """
    solve_mode = opts.solve_mode
    mpk_mode = opts.mpk_mode
    sketch_operator = opts.sketch_operator
    sketch_oversample = opts.sketch_oversample
    sketch_seed = opts.sketch_seed
    resketch_threshold = opts.resketch_threshold
    adaptive_cond_threshold = opts.adaptive_cond_threshold
    adaptive_gap_threshold = opts.adaptive_gap_threshold
    tracer = sim.tracer
    backend = sim.backend

    b = np.asarray(b, dtype=np.float64).ravel()
    b_vec = sim.vector_from(b)
    x_vec = sim.vector_from(x0 if x0 is not None else np.zeros(sim.n))
    r_vec = sim.zeros(1)
    basis_mv = sim.zeros(restart + 1, storage=policy.storage,
                         accumulate=policy.accumulate)
    r_factor = np.zeros((restart + 1, restart + 1))
    w_factor = np.zeros((restart + 1, restart + 1))
    history = ConvergenceHistory()
    bounds = _panel_bounds(s, restart + 1)

    sketch_ctx: _SolveSketch | None = None
    diagnostics: dict = {}
    if mpk_mode != "standard":
        diagnostics["mpk_mode"] = kernel_mode
    if not policy.is_default:
        diagnostics["precision"] = policy.name
        diagnostics["storage"] = policy.storage
    # mode = the *current* cycle's least-squares path; fixed for the
    # classical/sketched modes, switched between cycles by "adaptive".
    mode = "classical" if solve_mode == "classical" else "sketched"
    gap_threshold = (math.sqrt(EPS) if adaptive_gap_threshold is None
                     else float(adaptive_gap_threshold))
    if solve_mode in ("sketched", "adaptive"):
        sketch_ctx = _SolveSketch(
            backend, sim.n, restart + 1, sketch_operator, sketch_oversample,
            DEFAULT_SEED if sketch_seed is None else sketch_seed)
        diagnostics.update({"solve_mode": solve_mode,
                            "basis_condition_max": 0.0,
                            "residual_gap_max": 0.0,
                            "embedding_distortion_max": 0.0,
                            "embedding_rows": sketch_ctx.m_rows,
                            "resketch_count": 0})
        if solve_mode == "adaptive":
            diagnostics["mode_switches"] = 0

    beta0 = None
    iters = 0
    restarts = 0
    converged = False
    rel_res = np.inf
    h_prev: np.ndarray | None = None
    stalled_cycles = 0
    stalled = False
    est_abs: float | None = None  # last checkpoint's residual estimate
    tel = SolveTelemetry()        # one CycleRecord per restart cycle

    while iters < maxiter and not converged:
        yield "residual"
        gamma = _explicit_residual(sim, b_vec, x_vec, r_vec)
        if beta0 is None:
            beta0 = gamma if gamma > 0 else 1.0
            history.record(0, gamma / beta0)
        if sketch_ctx is not None and est_abs is not None:
            # Residual-gap monitor (arXiv:2409.03079): the distance
            # between the estimated and the explicit residual, relative
            # to the initial residual norm.  The gap belongs to the
            # cycle whose estimate it checks — the one that just ended.
            gap = abs(gamma - est_abs) / beta0
            tel.observe_gap(gap)
            est_abs = None
            if solve_mode == "adaptive":
                # Switch between cycles, never inside one: classical is
                # cheaper (no sketch collectives) but its coordinate
                # least squares silently degrades when orthogonality
                # slips — the residual gap is exactly that slip.  The
                # switch-back guard reads the finished cycle's worst
                # kappa(S V) off its telemetry record.
                prev = tel.last
                prev_cond = (prev.basis_condition
                             if prev is not None
                             and prev.basis_condition is not None else 0.0)
                if mode == "classical" and gap > gap_threshold:
                    mode = "sketched"
                    tel.event_last("mode_switch:sketched")
                elif (mode == "sketched" and gap <= gap_threshold
                      and 0.0 < prev_cond <= adaptive_cond_threshold):
                    mode = "classical"
                    tel.event_last("mode_switch:classical")
        rel_res = gamma / beta0
        if rel_res <= tol:
            converged = True
            break
        yield "setup"
        tel.begin_cycle(restarts, mode=mode)
        tracer.set_cycle(restarts)
        poly.new_cycle(h_prev)
        t_cob = poly.change_of_basis(restart)
        with tracer.phase("ortho"):
            dblas.copy_into(basis_mv.view_cols(0), r_vec)
            backend.scale_cols(basis_mv.view_cols(0), np.array([1.0 / gamma]))
        scheme.begin_cycle(backend, basis_mv, r_factor, observer=observer,
                           w=w_factor, cycle=restarts)
        if sketch_ctx is not None and mode == "sketched":
            sketch_ctx.begin_cycle(restarts)
        # State of each MPK start column at the time it was consumed:
        # "raw" (never orthogonalized), "final" (fully orthogonalized) or
        # "pre" (two-stage stage-1 only); drives the Hessenberg recovery.
        start_state: dict[int, str] = {}

        best: tuple[int, np.ndarray] | None = None  # (c, y) at last final R

        def _check(hi: int) -> bool:
            """Hessenberg + least squares at a final-R checkpoint."""
            nonlocal best, rel_res, h_prev, est_abs
            c = hi - 1
            if c < 1:
                return False
            w_tilde = np.zeros((c + 1, c))
            for k in range(c):
                state = start_state.get(k, "raw")
                if state == "final":
                    w_tilde[k, k] = 1.0
                elif state == "pre":
                    w_tilde[:, k] = w_factor[: c + 1, k]
                else:  # raw generated vector (interior of a panel)
                    w_tilde[:, k] = r_factor[: c + 1, k]
            h = assemble_hessenberg_mixed(r_factor, w_tilde, poly, c)
            backend.host_flops(2.0 * c ** 3)
            rhs = gamma * r_factor[: c + 1, 0]
            if sketch_ctx is not None and mode == "sketched":
                with tracer.phase("ortho"):
                    sq = sketch_ctx.basis_sketch(scheme, basis_mv, c + 1)
                y, resid, info = sketched_least_squares(sq, h, rhs)
                backend.host_flops(
                    2.0 * sq.shape[0] * (c + 1) ** 2 + 2.0 * c ** 3)
                if np.isfinite(info["basis_condition"]):
                    tel.observe("basis_condition", info["basis_condition"])
                # Leave-one-out split test: does the embedding actually
                # certify these basis columns?  Host-only, no
                # collectives; the running max is the re-sketching
                # signal surfaced in SolveResult.diagnostics.
                loo = leave_one_out_distortion(sq)
                backend.host_flops(4.0 * sq.shape[0] * (c + 1) ** 2)
                tel.observe("embedding_distortion", loo)
                if (resketch_threshold is not None
                        and math.isfinite(loo)
                        and loo > resketch_threshold):
                    # a *measured* distortion past the threshold: redraw
                    # the cycle operator from (seed, cycle,
                    # resketch_count) at the next restart instead of
                    # only reporting the estimate.  An infinite estimate
                    # means the split test itself was impossible (too
                    # few sketch rows for the held-out half) — a redraw
                    # of the same shape cannot fix that, so it stays
                    # report-only.
                    sketch_ctx.request_resketch()
                    tel.event("resketch_requested")
                est_abs = resid
            else:
                y, resid = least_squares_residual(h, gamma, rhs=rhs)
                backend.host_flops(2.0 * c ** 3)
                if sketch_ctx is not None:
                    # adaptive mode in a classical cycle: keep the
                    # residual-gap monitor armed so degradation is
                    # caught at the next restart.
                    est_abs = resid
            best = (c, y)
            h_prev = h
            rel_res = resid / beta0
            history.record(iters, rel_res)
            tel.note_residual(rel_res)
            return rel_res <= tol

        cycle_converged = False
        breakdown = False
        for lo, hi in bounds:
            yield "extend"
            if lo > 0:
                start_state[lo - 1] = ("final" if scheme.final_cols >= lo
                                       else "pre")
            mpk.extend(basis_mv, max(lo, 1), hi)
            yield "panel"
            try:
                with tracer.phase("ortho"):
                    final = scheme.panel_arrived(lo, hi)
            except CholeskyBreakdownError:
                # The panel is numerically rank deficient.  Per the
                # paper's Section IV-B this means the Krylov space has
                # (nearly) closed — "otherwise GMRES has converged" —
                # so truncate the cycle at the last sound panel and let
                # the explicit restart decide.
                breakdown = True
                tel.event("breakdown")
                break
            iters += hi - max(lo, 1)
            if final and _check(scheme.final_cols):
                cycle_converged = True
                break
            if iters >= maxiter:
                break
        yield "finish"
        if not cycle_converged:
            try:
                with tracer.phase("ortho"):
                    flushed = scheme.finish_cycle()
            except CholeskyBreakdownError:
                flushed = False
                breakdown = True
                tel.event("breakdown")
            if flushed:
                cycle_converged = _check(scheme.final_cols)

        yield "update"
        # solution update from the last final checkpoint
        if best is not None:
            c, y = best
            tmp = sim.zeros(1)
            z = sim.zeros(1)
            with tracer.phase("other"):
                dblas.matvec_small(basis_mv.view_cols(slice(0, c)),
                                   y[:, np.newaxis], tmp)
            op.apply_inverse_precond(tmp, z)
            with tracer.phase("other"):
                dblas.lincomb(x_vec, [(1.0, x_vec), (1.0, z)])
            stalled_cycles = 0
        elif breakdown:
            # A cycle that produced no usable checkpoint cannot improve
            # the iterate; a second one in a row means the basis breaks
            # down immediately — stop rather than loop forever.
            stalled_cycles += 1
            if stalled_cycles >= 2:
                stalled = True
                tel.end_cycle(iters)
                break
        restarts += 1
        tel.end_cycle(iters)
        if cycle_converged:
            # loop back once more: the explicit residual at the top
            # verifies convergence (paper Fig. 1 lines 18-19)
            continue

    tracer.set_cycle(None)
    # the legacy diagnostics keys are solve-wide reductions of the
    # per-cycle telemetry records (identical values by construction)
    if solve_mode == "adaptive":
        diagnostics["final_mode"] = mode
        diagnostics["mode_switches"] = tel.count_event("mode_switch")
    if sketch_ctx is not None:
        diagnostics["resketch_count"] = sketch_ctx.resketch_count
        diagnostics["basis_condition_max"] = tel.max_of(
            "basis_condition", 0.0)
        diagnostics["residual_gap_max"] = tel.max_of("residual_gap", 0.0)
        diagnostics["embedding_distortion_max"] = tel.max_of(
            "embedding_distortion", 0.0)
    totals = tracer.since(snap)
    times = dict(totals.by_phase)
    times["total"] = totals.clock
    ortho_breakdown = {k[1]: v for k, v in totals.by_kernel.items()
                       if k[0] == "ortho"}
    sync_count = sum(c for (ph, kern), c in totals.counts.items()
                     if kern == "allreduce")
    return SolveResult(
        x=x_vec.to_global()[:, 0], converged=converged, iterations=iters,
        restarts=restarts, relative_residual=float(rel_res),
        history=history, times=times, ortho_breakdown=ortho_breakdown,
        sync_count=sync_count, solver="sstep_gmres", scheme=scheme.name,
        stalled=stalled, diagnostics=diagnostics, telemetry=tel.to_list(),
        metrics=sim.metrics_doc())
