"""Hessenberg recovery and the small least-squares solve.

s-step GMRES never forms Arnoldi coefficients directly; after block
orthogonalization it holds ``V = Q R`` and the basis recurrence
``A V_{1:c} = V_{1:c+1} T``, from which (paper Fig. 1 line 14)

    H_{1:c+1, 1:c} = R_{1:c+1, 1:c+1} T_{1:c+1, 1:c} R^{-1}_{1:c, 1:c}.

The approximate solution then minimizes ``||gamma e1 - H y||`` exactly as
in standard GMRES.  Both computations are replicated small host-side
dense ops (paper Sec. VII: "operations with the small projected matrices,
including solving a small least-squares problem, is redundantly done on
CPU by each MPI process").
"""

from __future__ import annotations

import numpy as np
import scipy.linalg

from repro.exceptions import NumericalError, ShapeError


def assemble_hessenberg(r: np.ndarray, t: np.ndarray, c: int) -> np.ndarray:
    """``H = R_{1:c+1,1:c+1} T_{1:c+1,1:c} R^{-1}_{1:c,1:c}``.

    ``r`` must contain the final upper-triangular factor through column
    ``c`` (inclusive, i.e. shape at least (c+1, c+1)); ``t`` is the
    change-of-basis matrix of shape at least (c+1, c).
    """
    if r.shape[0] <= c or r.shape[1] <= c:
        raise ShapeError(f"R of shape {r.shape} too small for c={c}")
    if t.shape[0] < c + 1 or t.shape[1] < c:
        raise ShapeError(f"T of shape {t.shape} too small for c={c}")
    r_big = np.triu(r[: c + 1, : c + 1])
    r_small = r_big[:c, :c]
    diag = np.abs(np.diag(r_small))
    if diag.size and (np.min(diag) == 0.0
                      or np.min(diag) < 1e-300 * max(1.0, np.max(diag))):
        raise NumericalError(
            "R factor numerically singular while assembling Hessenberg")
    m = r_big @ t[: c + 1, :c]
    # H = M @ R_small^{-1}  <=>  solve R_small.T @ H.T = M.T
    h = scipy.linalg.solve_triangular(r_small, m.T, trans="T", lower=False).T
    return h


def assemble_hessenberg_mixed(r: np.ndarray, w_tilde: np.ndarray,
                              poly, c: int) -> np.ndarray:
    """Hessenberg recovery for in-place block orthogonalization.

    When panels are orthogonalized *in place*, the matrix powers kernel
    restarts each block from the current (orthogonalized or, for the
    two-stage scheme, pre-processed) content of the previous block's last
    column — not from the raw generated vector.  Writing ``u_k`` for the
    actual MPK input at step k and expanding the basis recurrence

        A u_k = beta_k v_{k+1} + alpha_k u_k + gamma_k u_{k-1},

    with ``v_{k+1} = Q r[:, k+1]`` and ``u_k = Q w_tilde[:, k]`` we get
    ``A Q W = Q C`` with ``C[:, k] = beta_k r[:, k+1] + alpha_k w[:, k]
    + gamma_k w[:, k-1]``, hence ``H = C W^{-1}`` (W is upper
    triangular).  With every ``w_tilde`` column equal to the matching
    ``r`` column this reduces to the paper's ``H = R T R^{-1}``
    (Fig. 1 line 14) — the paper's notation absorbs the in-place
    bookkeeping by defining each block's first column as the
    orthogonalized shared vector.

    ``w_tilde`` must be (>= c+1, >= c): column k = representation of the
    step-k MPK input over the final basis.
    """
    if r.shape[0] <= c or r.shape[1] <= c:
        raise ShapeError(f"R of shape {r.shape} too small for c={c}")
    if w_tilde.shape[0] < c + 1 or w_tilde.shape[1] < c:
        raise ShapeError(f"W of shape {w_tilde.shape} too small for c={c}")
    cmat = np.zeros((c + 1, c))
    for k in range(c):
        alpha, beta, gamma = poly.coefficients(k)
        cmat[:, k] = beta * r[: c + 1, k + 1]
        if alpha != 0.0:
            cmat[:, k] += alpha * w_tilde[: c + 1, k]
        if gamma != 0.0 and k > 0:
            cmat[:, k] += gamma * w_tilde[: c + 1, k - 1]
    w_small = np.triu(w_tilde[:c, :c])
    diag = np.abs(np.diag(w_small))
    if diag.size and (np.min(diag) == 0.0
                      or np.min(diag) < 1e-300 * max(1.0, np.max(diag))):
        raise NumericalError(
            "W factor numerically singular while assembling Hessenberg")
    return scipy.linalg.solve_triangular(w_small, cmat.T, trans="T",
                                         lower=False).T


def least_squares_residual(h: np.ndarray, gamma: float,
                           rhs: np.ndarray | None = None
                           ) -> tuple[np.ndarray, float]:
    """Minimize ``||gamma e1 - H y||_2`` for (c+1) x c Hessenberg ``H``.

    ``rhs`` optionally replaces ``gamma e1`` (the s-step solver passes
    ``gamma R[:, 0]`` since the cycle's starting vector has coordinates
    ``R[:, 0]``, not exactly ``e1``, over the final basis).

    Returns ``(y, residual_norm)``.  Solved via dense QR; the cost is
    O(c^3) host flops, negligible next to the distributed kernels but
    charged by callers via ``host_flops``.
    """
    h = np.asarray(h, dtype=np.float64)
    rows, cols = h.shape
    if rows != cols + 1:
        raise ShapeError(f"H must be (c+1) x c, got {h.shape}")
    if rhs is None:
        rhs = np.zeros(rows)
        rhs[0] = gamma
    else:
        rhs = np.asarray(rhs, dtype=np.float64).ravel()
        if rhs.shape[0] != rows:
            raise ShapeError(f"rhs length {rhs.shape[0]} != {rows}")
    q, r = np.linalg.qr(h, mode="reduced")
    z = q.T @ rhs
    diag = np.abs(np.diag(r))
    if cols and np.min(diag) == 0.0:
        y = np.linalg.lstsq(h, rhs, rcond=None)[0]
    else:
        y = scipy.linalg.solve_triangular(r, z, lower=False)
    resid = float(np.linalg.norm(rhs - h @ y))
    return y, resid


def sketched_least_squares(sq: np.ndarray, h: np.ndarray,
                           rhs: np.ndarray
                           ) -> tuple[np.ndarray, float, dict]:
    """Sketch-space GMRES least squares (randomized GMRES à la RGS).

    The cycle's residual over the basis is ``V_{1:c+1} (rhs - H y)``.
    Classical s-step GMRES minimizes the *coordinate* norm
    ``||rhs - H y||`` — correct only while ``V`` is orthonormal.  Here
    we are given the sketched basis ``sq = S V_{1:c+1}`` (``m`` rows)
    and minimize the *embedded* residual instead:

        min_y || S V (rhs - H y) ||_2  =  min_y || R_s (rhs - H y) ||_2

    with ``S V = Q_s R_s`` the thin QR of the sketch.  Since ``S`` is an
    eps-embedding of ``span(V)``, the minimum is within ``(1 +- eps)``
    of the true residual norm *whatever* the conditioning of ``V`` — the
    basis only needs to be numerically full-rank, not orthogonal.  This
    is what lets the solver run on a merely sketch-orthonormal basis
    (``SketchedTwoStageScheme(fused=True)``).

    Returns ``(y, resid_est, info)``: the minimizer, the sketched
    residual norm ``||R_s (rhs - H y)||`` (a backward-stable estimate of
    ``||b - A x||`` up to embedding distortion; cf. the residual-gap
    analysis of arXiv:2409.03079), and diagnostics — ``basis_condition``
    (``kappa(R_s)``, which estimates ``kappa(V)`` through the
    embedding), ``embedding_rows`` and ``rank_deficient``.
    """
    sq = np.asarray(sq, dtype=np.float64)
    h = np.asarray(h, dtype=np.float64)
    rows, cols = h.shape
    if rows != cols + 1:
        raise ShapeError(f"H must be (c+1) x c, got {h.shape}")
    if sq.ndim != 2 or sq.shape[1] != rows:
        raise ShapeError(
            f"sketched basis of shape {sq.shape} does not cover the "
            f"{rows} basis columns of H")
    if sq.shape[0] < rows:
        raise ShapeError(
            f"sketch has {sq.shape[0]} rows < {rows} basis columns: not "
            f"an embedding")
    rhs = np.asarray(rhs, dtype=np.float64).ravel()
    if rhs.shape[0] != rows:
        raise ShapeError(f"rhs length {rhs.shape[0]} != {rows}")
    _, r_s = np.linalg.qr(sq, mode="reduced")
    diag_s = np.abs(np.diag(r_s))
    dmax = float(np.max(diag_s)) if diag_s.size else 0.0
    if dmax == 0.0:
        raise NumericalError("sketched basis is identically zero")
    rank_deficient = bool(np.min(diag_s) == 0.0)
    # Whitened (well-conditioned) small problem: g = R_s H, z = R_s rhs.
    g = r_s @ h
    z = r_s @ rhs
    q_g, r_g = np.linalg.qr(g, mode="reduced")
    diag_g = np.abs(np.diag(r_g))
    if cols and np.min(diag_g) == 0.0:
        y = np.linalg.lstsq(g, z, rcond=None)[0]
    else:
        y = scipy.linalg.solve_triangular(r_g, q_g.T @ z, lower=False)
    resid = float(np.linalg.norm(z - g @ y))
    info = {
        "basis_condition": float(np.inf) if rank_deficient
        else float(np.linalg.cond(r_s)),
        "embedding_rows": int(sq.shape[0]),
        "rank_deficient": rank_deficient,
    }
    return y, resid, info
