"""Krylov solvers: standard GMRES(m) and s-step GMRES (paper Fig. 1).

The solvers run on a :class:`Simulation` — a bundle of the distributed
matrix, communicator, cost tracer and backend — so every run doubles as a
performance experiment on the simulated machine.
"""

from repro.krylov.simulation import Simulation
from repro.krylov.options import SolverOptions
from repro.krylov.result import ConvergenceHistory, SolveResult
from repro.krylov.basis import (
    ChebyshevBasis,
    KrylovBasis,
    MonomialBasis,
    NewtonBasis,
)
from repro.krylov.mpk import MatrixPowersKernel, PreconditionedOperator
from repro.krylov.hessenberg import assemble_hessenberg, least_squares_residual
from repro.krylov.gmres import gmres
from repro.krylov.sstep_gmres import sstep_gmres
from repro.krylov.block import block_sstep_gmres
from repro.krylov.ir import gmres_ir
from repro.krylov.adaptive import adaptive_sstep_gmres
from repro.krylov.pipelined import pipelined_gmres

__all__ = [
    "Simulation",
    "SolverOptions",
    "SolveResult",
    "ConvergenceHistory",
    "KrylovBasis",
    "MonomialBasis",
    "NewtonBasis",
    "ChebyshevBasis",
    "MatrixPowersKernel",
    "PreconditionedOperator",
    "assemble_hessenberg",
    "least_squares_residual",
    "gmres",
    "sstep_gmres",
    "block_sstep_gmres",
    "gmres_ir",
    "adaptive_sstep_gmres",
    "pipelined_gmres",
]
