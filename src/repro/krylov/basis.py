"""Krylov basis polynomials and their change-of-basis matrices.

s-step GMRES generates, per block, vectors ``v_{k+1} = p_k(A) v_1`` for a
polynomial family chosen for conditioning; the solver later needs the
change-of-basis matrix ``T`` with ``A V_{1:c} = V_{1:c+1} T`` to recover
the Hessenberg matrix (paper Fig. 1 line 14: ``H = R T R^{-1}``).

* :class:`MonomialBasis` — ``v_{k+1} = A v_k``.  The paper's experiments
  use this ("we used monomial basis, even though using more stable bases,
  like Newton or Chebyshev bases, could reduce the condition number").
* :class:`NewtonBasis` — ``v_{k+1} = (A - theta_k I) v_k`` with
  Leja-ordered Ritz-value shifts [1].
* :class:`ChebyshevBasis` — scaled three-term Chebyshev recurrence on a
  spectral interval estimate.

Each basis exposes the per-step recurrence coefficients; the matrix
powers kernel executes them and :meth:`KrylovBasis.change_of_basis`
assembles ``T``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.exceptions import ConfigurationError


class KrylovBasis(ABC):
    """Polynomial recurrence for the s-step basis.

    Step ``k`` (0-based, global across the restart cycle) produces

        v_{k+1} = (A v_k - alpha_k v_k - gamma_k v_{k-1}) / beta_k

    which covers all three families (monomial: alpha = gamma = 0,
    beta = 1; Newton: gamma = 0; Chebyshev: full three-term).
    """

    name: str = "abstract"

    @abstractmethod
    def coefficients(self, k: int) -> tuple[float, float, float]:
        """Return ``(alpha_k, beta_k, gamma_k)`` for step ``k``."""

    def change_of_basis(self, c: int) -> np.ndarray:
        """``T`` of shape (c+1, c) with ``A V_{1:c} = V_{1:c+1} T``.

        From the recurrence: ``A v_k = alpha_k v_k + gamma_k v_{k-1}
        + beta_k v_{k+1}``.
        """
        t = np.zeros((c + 1, c))
        for k in range(c):
            alpha, beta, gamma = self.coefficients(k)
            t[k, k] = alpha
            t[k + 1, k] = beta
            if k > 0:
                t[k - 1, k] = gamma
        return t

    def new_cycle(self, hessenberg: np.ndarray | None) -> None:
        """Hook called at each restart with the previous cycle's H (may be
        None on the first cycle) — Newton re-derives its shifts here."""


class MonomialBasis(KrylovBasis):
    """``v_{k+1} = A v_k`` — the paper's configuration."""

    name = "monomial"

    def coefficients(self, k: int) -> tuple[float, float, float]:
        return 0.0, 1.0, 0.0


class NewtonBasis(KrylovBasis):
    """Newton basis with Leja-ordered shifts (Bai, Hu, Reichel [1]).

    Shifts default to zero (monomial) until :meth:`new_cycle` sees a
    Hessenberg matrix to harvest Ritz values from; they are then Leja
    ordered to spread consecutive shifts apart.
    """

    name = "newton"

    def __init__(self, shifts: np.ndarray | None = None) -> None:
        self._shifts = (np.asarray(shifts, dtype=np.float64)
                        if shifts is not None else np.zeros(0))

    @property
    def shifts(self) -> np.ndarray:
        return self._shifts.copy()

    def coefficients(self, k: int) -> tuple[float, float, float]:
        theta = float(self._shifts[k % len(self._shifts)]) if len(self._shifts) else 0.0
        return theta, 1.0, 0.0

    def new_cycle(self, hessenberg: np.ndarray | None) -> None:
        if hessenberg is None or hessenberg.size == 0:
            return
        h = np.asarray(hessenberg)
        hsq = h[: h.shape[1], : h.shape[1]]
        ritz = np.linalg.eigvals(hsq)
        # real-arithmetic kernel: keep real parts (complex pairs would need
        # the paired-shift recurrence; the real projection preserves the
        # conditioning benefit for predominantly-real spectra)
        self._shifts = leja_order(np.real(ritz))

    def __repr__(self) -> str:
        return f"NewtonBasis(shifts={len(self._shifts)})"


class ChebyshevBasis(KrylovBasis):
    """Scaled Chebyshev basis on the interval ``[lmin, lmax]``.

    Recurrence (k >= 1): ``v_{k+1} = (2/delta)(A - center I) v_k - v_{k-1}``
    with ``center = (lmax+lmin)/2``, ``delta = (lmax-lmin)/2``, i.e.
    ``A v_k = center v_k + (delta/2) v_{k-1} + (delta/2) v_{k+1}``.
    Step 0 uses the two-term start ``v_1 = (A - center) v_0 / delta``.
    """

    name = "chebyshev"

    def __init__(self, lmin: float, lmax: float) -> None:
        if not lmax > lmin:
            raise ConfigurationError(
                f"need lmax > lmin, got [{lmin}, {lmax}]")
        self.center = 0.5 * (lmax + lmin)
        self.delta = 0.5 * (lmax - lmin)

    def coefficients(self, k: int) -> tuple[float, float, float]:
        if k == 0:
            return self.center, self.delta, 0.0
        return self.center, 0.5 * self.delta, 0.5 * self.delta


def leja_order(points: np.ndarray) -> np.ndarray:
    """Order points to greedily maximize pairwise distance products.

    The Leja ordering keeps consecutive Newton shifts well separated,
    which is what controls the conditioning of the Newton basis.
    """
    pts = np.asarray(points, dtype=np.float64).copy()
    if pts.size == 0:
        return pts
    out = np.empty_like(pts)
    used = np.zeros(pts.size, dtype=bool)
    idx = int(np.argmax(np.abs(pts)))
    out[0] = pts[idx]
    used[idx] = True
    # products of distances to already-chosen points, in log space to
    # avoid under/overflow
    logprod = np.full(pts.size, -np.inf)
    logprod[~used] = 0.0
    for i in range(1, pts.size):
        with np.errstate(divide="ignore"):
            logprod[~used] += np.log(np.abs(pts[~used] - out[i - 1]) + 1e-300)
        idx = int(np.argmax(np.where(used, -np.inf, logprod)))
        out[i] = pts[idx]
        used[idx] = True
        logprod[idx] = -np.inf
    return out
