"""Global configuration knobs for :mod:`repro`.

Configuration is intentionally tiny: a default dtype, the default step
sizes the paper uses, reproducibility seeds, and the kernel-execution
engine of the costed BLAS layer.  Everything machine-performance-related
lives in :class:`repro.parallel.machine.MachineSpec` instances so that
two machine models can coexist in one process.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

#: Working precision of the library (the paper works in IEEE double).
DEFAULT_DTYPE = np.float64

#: Machine epsilon of the working precision (paper notation: eps).
EPS = float(np.finfo(np.float64).eps)

#: The paper's default (conservative) first-stage step size, Section VIII:
#: "a conservative step size like s = 5 is used as the default step size".
DEFAULT_STEP_SIZE = 5

#: The paper's restart length, Section VIII: "we used the restart length of
#: 60 (i.e., m = 60)".
DEFAULT_RESTART = 60

#: Default relative-residual convergence tolerance, Section VIII:
#: "converged when the relative residual norm is reduced by six orders of
#: magnitude".
DEFAULT_TOL = 1.0e-6

#: Seed used by deterministic fixtures and examples.
DEFAULT_SEED = 1729

# ---------------------------------------------------------------------------
# kernel-execution engine of the costed BLAS layer (repro.distla)
# ---------------------------------------------------------------------------

#: Reference engine: one Python-level NumPy call per simulated rank.
ENGINE_LOOP = "loop"

#: Batched engine: equal-sized shards execute as single GEMMs/streaming
#: kernels over a contiguous ``(ranks, rows, k)`` stack; ragged partitions
#: fall back to the loop path op-by-op.
ENGINE_BATCHED = "batched"

#: All selectable engines, in documentation order.
ENGINES = (ENGINE_LOOP, ENGINE_BATCHED)

#: Engine used when neither :func:`set_engine` nor ``REPRO_ENGINE`` says
#: otherwise.  Batched is the default: it charges identical modeled costs
#: and produces the same MPI-faithful reduction order as the loop engine.
DEFAULT_ENGINE = ENGINE_BATCHED

_active_engine: str | None = None


def validate_engine(name: str) -> str:
    """Return ``name`` if it names a known engine, else raise ValueError.

    Constructors that *bind* an engine (``SimComm``, ``DistBackend``,
    ``Simulation``) call this so a typo fails at the configuration site,
    not deep inside the first BLAS call.
    """
    if name not in ENGINES:
        raise ValueError(
            f"unknown engine {name!r}; expected one of {ENGINES}")
    return name


def get_engine() -> str:
    """Name of the active kernel-execution engine.

    Resolution order: :func:`set_engine` / :func:`engine_scope` override,
    then the ``REPRO_ENGINE`` environment variable (re-read on every call
    so test monkeypatching works), then :data:`DEFAULT_ENGINE`.
    """
    if _active_engine is not None:
        return _active_engine
    return validate_engine(os.environ.get("REPRO_ENGINE", DEFAULT_ENGINE))


def set_engine(name: str | None) -> str | None:
    """Pin the engine process-wide; returns the previous pin.

    The return value is the raw prior pin — ``None`` when the process was
    deferring to ``REPRO_ENGINE``/:data:`DEFAULT_ENGINE` — so
    ``set_engine(set_engine("loop"))`` restores the exact prior state
    instead of freezing the resolved default.  Passing ``None`` unpins.
    """
    global _active_engine
    previous = _active_engine
    _active_engine = None if name is None else validate_engine(name)
    return previous


@contextmanager
def engine_scope(name: str):
    """Temporarily select an engine (restores the previous state on exit,
    including deference to ``REPRO_ENGINE`` when nothing was pinned)."""
    previous = set_engine(name)
    try:
        yield name
    finally:
        set_engine(previous)


@dataclass(frozen=True)
class SolverDefaults:
    """Bundle of the paper's default solver parameters.

    A frozen dataclass so experiment code can pass one object around and
    tests can assert against a single source of truth.
    """

    step_size: int = DEFAULT_STEP_SIZE
    restart: int = DEFAULT_RESTART
    tol: float = DEFAULT_TOL
    maxiter: int = 100_000

    def with_big_panel(self, big_step: int) -> "TwoStageDefaults":
        """Return two-stage defaults with second-stage step ``big_step``."""
        return TwoStageDefaults(step_size=self.step_size, restart=self.restart,
                                tol=self.tol, maxiter=self.maxiter,
                                big_step=big_step)


@dataclass(frozen=True)
class TwoStageDefaults(SolverDefaults):
    """Solver defaults plus the second-stage (big panel) step size ``bs``."""

    big_step: int = DEFAULT_RESTART  # bs = m is the paper's best performer
