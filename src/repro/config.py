"""Global configuration knobs for :mod:`repro`.

Configuration is intentionally tiny: a default dtype, the default step
sizes the paper uses, and reproducibility seeds.  Everything
performance-related lives in :class:`repro.parallel.machine.MachineSpec`
instances so that two machine models can coexist in one process.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Working precision of the library (the paper works in IEEE double).
DEFAULT_DTYPE = np.float64

#: Machine epsilon of the working precision (paper notation: eps).
EPS = float(np.finfo(np.float64).eps)

#: The paper's default (conservative) first-stage step size, Section VIII:
#: "a conservative step size like s = 5 is used as the default step size".
DEFAULT_STEP_SIZE = 5

#: The paper's restart length, Section VIII: "we used the restart length of
#: 60 (i.e., m = 60)".
DEFAULT_RESTART = 60

#: Default relative-residual convergence tolerance, Section VIII:
#: "converged when the relative residual norm is reduced by six orders of
#: magnitude".
DEFAULT_TOL = 1.0e-6

#: Seed used by deterministic fixtures and examples.
DEFAULT_SEED = 1729


@dataclass(frozen=True)
class SolverDefaults:
    """Bundle of the paper's default solver parameters.

    A frozen dataclass so experiment code can pass one object around and
    tests can assert against a single source of truth.
    """

    step_size: int = DEFAULT_STEP_SIZE
    restart: int = DEFAULT_RESTART
    tol: float = DEFAULT_TOL
    maxiter: int = 100_000

    def with_big_panel(self, big_step: int) -> "TwoStageDefaults":
        """Return two-stage defaults with second-stage step ``big_step``."""
        return TwoStageDefaults(step_size=self.step_size, restart=self.restart,
                                tol=self.tol, maxiter=self.maxiter,
                                big_step=big_step)


@dataclass(frozen=True)
class TwoStageDefaults(SolverDefaults):
    """Solver defaults plus the second-stage (big panel) step size ``bs``."""

    big_step: int = DEFAULT_RESTART  # bs = m is the paper's best performer
