"""Block Jacobi with local Gauss-Seidel (the paper's Fig. 13 setup).

Each rank smooths its own diagonal block with Gauss-Seidel sweeps; no
inter-rank coupling is used (the off-block entries are simply dropped),
so an apply costs zero messages — exactly the "local Gauss-Seidel
preconditioner (block Jacobi with Gauss-Seidel in each block [2])".
"""

from __future__ import annotations


from repro.distla.multivector import DistMultiVector
from repro.distla.spmatrix import DistSparseMatrix
from repro.precond.base import Preconditioner
from repro.precond.gauss_seidel import LocalGaussSeidel


class BlockJacobiPreconditioner(Preconditioner):
    """One (or more) local multicolor Gauss-Seidel sweeps per block.

    Parameters
    ----------
    sweeps:
        Gauss-Seidel sweeps per apply (default 1, as a smoother).
    ordering:
        "multicolor" (GPU-style, the paper's choice) or "natural".
    """

    name = "block_jacobi_gs"

    def __init__(self, sweeps: int = 1, ordering: str = "multicolor") -> None:
        super().__init__()
        self.sweeps = sweeps
        self.ordering = ordering
        self._solvers: list[LocalGaussSeidel] = []

    def _setup_impl(self, matrix: DistSparseMatrix) -> None:
        self._solvers = []
        part = matrix.partition
        for rank, block in enumerate(matrix.local_blocks):
            sl = part.local_slice(rank)
            diag_block = block[:, sl.start:sl.stop].tocsr()
            self._solvers.append(
                LocalGaussSeidel(diag_block, ordering=self.ordering,
                                 sweeps=self.sweeps))

    def apply(self, x: DistMultiVector, out: DistMultiVector) -> None:
        self._check_ready()
        comm = x.comm
        costs = []
        for rank, solver in enumerate(self._solvers):
            out.shards[rank][:, 0] = solver.apply(x.shards[rank][:, 0])
            rows = solver.a.shape[0]
            # Per sweep: one pass over the block's nonzeros; multicolor
            # ordering additionally pays one kernel launch per color.
            launches = solver.n_colors if self.ordering == "multicolor" else 1
            per_sweep = (comm.cost.spmv(solver.a.nnz, rows, rows)
                         + (launches - 1) * comm.machine.kernel_latency)
            costs.append(self.sweeps * per_sweep)
        comm.charge_local("spmv_local", costs)
