"""Block Jacobi with local Gauss-Seidel (the paper's Fig. 13 setup).

Each rank smooths its own diagonal block with Gauss-Seidel sweeps; no
inter-rank coupling is used (the off-block entries are simply dropped),
so an apply costs zero messages — exactly the "local Gauss-Seidel
preconditioner (block Jacobi with Gauss-Seidel in each block [2])".
"""

from __future__ import annotations

import numpy as np

from repro.distla.multivector import DistMultiVector
from repro.distla.spmatrix import DistSparseMatrix
from repro.precond.base import Preconditioner
from repro.precond.gauss_seidel import LocalGaussSeidel


class BlockJacobiPreconditioner(Preconditioner):
    """One (or more) local multicolor Gauss-Seidel sweeps per block.

    Parameters
    ----------
    sweeps:
        Gauss-Seidel sweeps per apply (default 1, as a smoother).
    ordering:
        "multicolor" (GPU-style, the paper's choice) or "natural".
    """

    name = "block_jacobi_gs"
    #: The GS solve couples every row of a rank's block, so the CA-MPK
    #: ghost closure must round each level up to whole owner blocks.
    ghost_compat = "block"

    def __init__(self, sweeps: int = 1, ordering: str = "multicolor") -> None:
        super().__init__()
        self.sweeps = sweeps
        self.ordering = ordering
        self._solvers: list[LocalGaussSeidel] = []

    def _setup_impl(self, matrix: DistSparseMatrix) -> None:
        self._solvers = []
        part = matrix.partition
        for rank, block in enumerate(matrix.local_blocks):
            sl = part.local_slice(rank)
            diag_block = block[:, sl.start:sl.stop].tocsr()
            self._solvers.append(
                LocalGaussSeidel(diag_block, ordering=self.ordering,
                                 sweeps=self.sweeps))

    def apply(self, x: DistMultiVector, out: DistMultiVector) -> None:
        self._check_ready()
        comm = x.comm
        costs = []
        for rank, solver in enumerate(self._solvers):
            out.shards[rank][:, 0] = solver.apply(x.shards[rank][:, 0])
            rows = solver.a.shape[0]
            # Per sweep: one pass over the block's nonzeros; multicolor
            # ordering additionally pays one kernel launch per color.
            launches = solver.n_colors if self.ordering == "multicolor" else 1
            per_sweep = (comm.cost.spmv(solver.a.nnz, rows, rows)
                         + (launches - 1) * comm.machine.kernel_latency)
            costs.append(self.sweeps * per_sweep)
        comm.charge_local("spmv_local", costs)

    # -- CA-MPK ghost composition --------------------------------------
    def _block_cost(self, cost, machine, rank: int) -> float:
        solver = self._solvers[rank]
        rows = solver.a.shape[0]
        launches = solver.n_colors if self.ordering == "multicolor" else 1
        return self.sweeps * (cost.spmv(solver.a.nnz, rows, rows)
                              + (launches - 1) * machine.kernel_latency)

    def apply_ghosted(self, x: np.ndarray, rows: np.ndarray,
                      out: np.ndarray, ctype: np.dtype) -> None:
        """Redundantly solve every owner block intersecting ``rows``.

        ``rows`` is block-complete (``ghost_compat == "block"`` rounds
        closure levels up to whole blocks), so each involved peer's full
        block of ``x`` is present and the GS solve reproduces the owning
        rank's result bit-for-bit.
        """
        self._check_ready()
        part = self._matrix.partition
        for peer in np.unique(part.owners(rows)):
            sl = part.local_slice(int(peer))
            out[sl] = self._solvers[int(peer)].apply(x[sl]).astype(ctype)

    def charge_ghost_apply(self, comm, plan, level: int) -> None:
        costs = []
        for rank in range(plan.partition.ranks):
            costs.append(sum(
                self._block_cost(comm.cost, comm.machine, int(peer))
                for peer in plan.level_ranks[rank][level]))
        comm.charge_local("spmv_local", costs)
