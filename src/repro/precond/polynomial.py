"""Chebyshev polynomial preconditioner.

``M^{-1} = p_d(A)`` with ``p_d`` the degree-``d`` Chebyshev polynomial
minimizing ``max |1 - lambda p(lambda)|`` on a target interval
``[lmin, lmax]``.  Each apply costs ``d`` SpMVs (halo exchanges included)
and no global reductions — like the paper's local Gauss-Seidel, its
communication pattern composes cleanly with the s-step MPK.

Interval defaults come from Gershgorin bounds of the assembled matrix;
SPD problems typically use ``lmin = lmax / 30``.
"""

from __future__ import annotations

import numpy as np

from repro.distla import blas as dblas
from repro.distla.multivector import DistMultiVector
from repro.distla.spmatrix import DistSparseMatrix
from repro.exceptions import ConfigurationError
from repro.precond.base import Preconditioner


def gershgorin_interval(matrix: DistSparseMatrix) -> tuple[float, float]:
    """Gershgorin eigenvalue bounds of the assembled operator."""
    a = matrix.to_scipy()
    diag = a.diagonal()
    radius = np.asarray(abs(a).sum(axis=1)).ravel() - np.abs(diag)
    return float(np.min(diag - radius)), float(np.max(diag + radius))


class ChebyshevPreconditioner(Preconditioner):
    """Degree-``d`` Chebyshev smoother on ``[lmin, lmax]``.

    Standard three-term implementation (Saad, Iterative Methods, alg.
    12.1): iterates ``z_k`` approximating ``A^{-1} x`` with residual
    polynomial Chebyshev-minimal on the interval.
    """

    name = "chebyshev"

    def __init__(self, degree: int = 4,
                 interval: tuple[float, float] | None = None,
                 min_fraction: float = 1.0 / 30.0) -> None:
        if degree < 1:
            raise ConfigurationError(f"degree must be >= 1, got {degree}")
        super().__init__()
        self.degree = degree
        self._interval = interval
        self.min_fraction = min_fraction
        self._theta = 0.0
        self._delta = 0.0

    def _setup_impl(self, matrix: DistSparseMatrix) -> None:
        if self._interval is None:
            lo, hi = gershgorin_interval(matrix)
            hi = max(hi, 1e-300)
            lo = max(lo, hi * self.min_fraction)
            self._interval = (lo, hi)
        lmin, lmax = self._interval
        if not lmax > lmin > 0:
            raise ConfigurationError(
                f"Chebyshev needs 0 < lmin < lmax, got [{lmin}, {lmax}]")
        self._theta = 0.5 * (lmax + lmin)
        self._delta = 0.5 * (lmax - lmin)

    def apply(self, x: DistMultiVector, out: DistMultiVector) -> None:
        self._check_ready()
        matrix = self._matrix
        theta, delta = self._theta, self._delta
        # z_1 = x / theta;  standard Chebyshev smoother recurrence.
        z = x.copy()
        dblas.scale_columns(z, np.array([1.0 / theta]))
        r = x.copy()            # residual r = x - A z
        az = matrix.matvec(z)
        dblas.lincomb(r, [(1.0, x), (-1.0, az)])
        sigma = theta / delta
        rho_old = 1.0 / sigma
        d = r.copy()
        dblas.scale_columns(d, np.array([1.0 / theta]))
        for _ in range(self.degree - 1):
            rho = 1.0 / (2.0 * sigma - rho_old)
            # d <- rho*rho_old*d + (2*rho/delta) r ; z <- z + d
            dblas.lincomb(d, [(rho * rho_old, d), (2.0 * rho / delta, r)])
            dblas.lincomb(z, [(1.0, z), (1.0, d)])
            ad = matrix.matvec(d)
            dblas.lincomb(r, [(1.0, r), (-1.0, ad)])
            rho_old = rho
        out.assign_from(z)
