"""Greedy distance-1 graph coloring (Deveci et al. [10], sequential form).

Multicolor Gauss-Seidel needs a partition of the unknowns into color
classes with no intra-class adjacency: rows of one color can then be
updated concurrently on a GPU.  The paper uses the parallel coloring of
Kokkos Kernels; our simulator only needs the coloring itself, so a
first-fit greedy pass over the local sparsity graph suffices (it yields
the same small color counts — 2 for bipartite stencils, <= max-degree+1
in general).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp


def greedy_coloring(a: sp.spmatrix) -> np.ndarray:
    """First-fit greedy coloring of the symmetrized sparsity graph.

    Returns an int array ``colors`` of length n with ``colors[i] !=
    colors[j]`` whenever ``a[i, j]`` or ``a[j, i]`` is structurally
    nonzero (i != j).
    """
    a = sp.csr_matrix(a)
    n = a.shape[0]
    # symmetrize the pattern so the coloring is valid for both sweeps
    pattern = a + a.T
    pattern = sp.csr_matrix(pattern)
    indptr, indices = pattern.indptr, pattern.indices
    colors = np.full(n, -1, dtype=np.int64)
    # scratch: last row that used each color, avoids clearing a set per row
    color_mark = np.full(64, -1, dtype=np.int64)
    for i in range(n):
        neigh = indices[indptr[i]:indptr[i + 1]]
        for j in neigh:
            cj = colors[j]
            if cj >= 0:
                if cj >= color_mark.size:
                    color_mark = np.concatenate(
                        [color_mark, np.full(cj + 64, -1, dtype=np.int64)])
                color_mark[cj] = i
        c = 0
        while c < color_mark.size and color_mark[c] == i:
            c += 1
        colors[i] = c
    return colors


def color_classes(colors: np.ndarray) -> list[np.ndarray]:
    """Index arrays per color, ordered by color id."""
    n_colors = int(colors.max()) + 1 if colors.size else 0
    return [np.flatnonzero(colors == c) for c in range(n_colors)]
