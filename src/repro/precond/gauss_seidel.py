"""Local Gauss-Seidel sweeps (the inner solver of block Jacobi).

Two orderings:

* ``"natural"`` — classic forward sweep ``z = (D + L)^{-1} x`` via a
  sparse triangular solve (what a sequential CPU implementation does).
* ``"multicolor"`` — the GPU-friendly ordering of the paper (Fig. 13 uses
  "the multicolor Gauss-Seidel [10] from Kokkos Kernels"): rows are
  processed color class by color class; all rows of one color update
  concurrently, which we execute as one vectorized submatrix product per
  color.

Both operate on a *local* matrix block (no communication); the block
Jacobi wrapper feeds each rank its own diagonal block.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.exceptions import ConfigurationError, NumericalError
from repro.precond.coloring import color_classes, greedy_coloring


class LocalGaussSeidel:
    """Gauss-Seidel sweeps on one local block ``a`` (CSR)."""

    def __init__(self, a: sp.csr_matrix, ordering: str = "multicolor",
                 sweeps: int = 1) -> None:
        if ordering not in ("natural", "multicolor"):
            raise ConfigurationError(f"unknown ordering {ordering!r}")
        if sweeps < 1:
            raise ConfigurationError(f"sweeps must be >= 1, got {sweeps}")
        self.a = sp.csr_matrix(a)
        if self.a.shape[0] != self.a.shape[1]:
            raise ConfigurationError("Gauss-Seidel block must be square")
        self.ordering = ordering
        self.sweeps = sweeps
        diag = self.a.diagonal()
        if np.any(diag == 0.0):
            raise NumericalError("Gauss-Seidel requires nonzero diagonal")
        self.inv_diag = 1.0 / diag
        if ordering == "natural":
            self.lower = sp.tril(self.a, k=0).tocsr()
            self.strict_upper = (self.a - self.lower).tocsr()
        else:
            self.colors = greedy_coloring(self.a)
            self.classes = color_classes(self.colors)
            # per-class row submatrices for the vectorized sweep
            self.class_rows = [self.a[idx, :].tocsr() for idx in self.classes]

    @property
    def n_colors(self) -> int:
        return len(self.classes) if self.ordering == "multicolor" else 1

    def apply(self, x: np.ndarray, z: np.ndarray | None = None) -> np.ndarray:
        """Approximate ``A^{-1} x`` with ``sweeps`` forward GS sweeps.

        ``z`` optionally supplies the initial guess (default zero);
        returns the smoothed vector.
        """
        x = np.asarray(x, dtype=np.float64).ravel()
        if x.shape[0] != self.a.shape[0]:
            raise ConfigurationError(
                f"operand length {x.shape[0]} != block size {self.a.shape[0]}")
        z = np.zeros_like(x) if z is None else np.array(z, dtype=np.float64)
        for _ in range(self.sweeps):
            if self.ordering == "natural":
                # z <- (D + L)^{-1} (x - U z)   (forward sweep)
                z = sp.linalg.spsolve_triangular(
                    self.lower, x - self.strict_upper @ z, lower=True)
            else:
                for idx, rows in zip(self.classes, self.class_rows):
                    # z_c <- z_c + D_c^{-1} (x_c - (A z)_c)
                    r = x[idx] - rows @ z
                    z[idx] += self.inv_diag[idx] * r
        return z
