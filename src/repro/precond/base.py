"""Preconditioner interface.

A preconditioner approximates ``M ~ A`` and applies ``z = M^{-1} x`` to
distributed vectors.  ``setup`` receives the distributed matrix once;
``apply`` must be communication-free or charge its own communication —
the s-step MPK calls it once per step, so its synchronization pattern
directly affects the solver's communication profile (the reason the
paper uses a *local* preconditioner).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.distla.multivector import DistMultiVector
from repro.distla.spmatrix import DistSparseMatrix
from repro.exceptions import ConfigurationError


class Preconditioner(ABC):
    """Base class: ``setup`` once, ``apply`` per operator application."""

    name: str = "abstract"

    def __init__(self) -> None:
        self._matrix: DistSparseMatrix | None = None

    @property
    def is_setup(self) -> bool:
        return self._matrix is not None

    def setup(self, matrix: DistSparseMatrix) -> "Preconditioner":
        """Analyze/factor; returns self for chaining."""
        self._matrix = matrix
        self._setup_impl(matrix)
        return self

    def _setup_impl(self, matrix: DistSparseMatrix) -> None:
        """Subclass hook (default: nothing to precompute)."""

    @abstractmethod
    def apply(self, x: DistMultiVector, out: DistMultiVector) -> None:
        """``out = M^{-1} x`` (single-column distributed vectors)."""

    def _check_ready(self) -> None:
        if not self.is_setup:
            raise ConfigurationError(
                f"{type(self).__name__}.apply called before setup()")


class IdentityPreconditioner(Preconditioner):
    """No-op preconditioner (``M = I``)."""

    name = "identity"

    def setup(self, matrix: DistSparseMatrix) -> "IdentityPreconditioner":
        self._matrix = matrix
        return self

    def apply(self, x: DistMultiVector, out: DistMultiVector) -> None:
        out.assign_from(x)
