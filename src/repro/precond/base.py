"""Preconditioner interface.

A preconditioner approximates ``M ~ A`` and applies ``z = M^{-1} x`` to
distributed vectors.  ``setup`` receives the distributed matrix once;
``apply`` must be communication-free or charge its own communication —
the s-step MPK calls it once per step, so its synchronization pattern
directly affects the solver's communication profile (the reason the
paper uses a *local* preconditioner).

CA-MPK composition: the communication-avoiding matrix powers kernel can
only fold ``M^{-1}`` into its ghost-zone closure when the ghost values
of ``M^{-1} x`` are computable from a *finite* dependency set.
:attr:`Preconditioner.ghost_compat` declares that set's shape —
``"pointwise"`` (row ``i`` of ``M^{-1} x`` depends only on row ``i`` of
``x``: identity, Jacobi), ``"block"`` (depends on the owner rank's whole
block: block Jacobi), or ``None`` (no finite closure: polynomial and
other global preconditioners, which the CA kernel must reject).
Compatible preconditioners implement :meth:`apply_ghosted` (redundant
apply over a global work array) and :meth:`charge_ghost_apply` (the
per-rank modeled cost of that redundant work).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.distla.multivector import DistMultiVector
from repro.distla.spmatrix import DistSparseMatrix
from repro.exceptions import ConfigurationError


class Preconditioner(ABC):
    """Base class: ``setup`` once, ``apply`` per operator application."""

    name: str = "abstract"

    #: CA-MPK ghost-closure shape: "pointwise", "block", or None (see
    #: module docstring).  None means the CA kernel cannot compose.
    ghost_compat: str | None = None

    def __init__(self) -> None:
        self._matrix: DistSparseMatrix | None = None

    @property
    def is_setup(self) -> bool:
        return self._matrix is not None

    def setup(self, matrix: DistSparseMatrix) -> "Preconditioner":
        """Analyze/factor; returns self for chaining."""
        self._matrix = matrix
        self._setup_impl(matrix)
        return self

    def _setup_impl(self, matrix: DistSparseMatrix) -> None:
        """Subclass hook (default: nothing to precompute)."""

    @abstractmethod
    def apply(self, x: DistMultiVector, out: DistMultiVector) -> None:
        """``out = M^{-1} x`` (single-column distributed vectors)."""

    # -- CA-MPK ghost composition --------------------------------------
    def apply_ghosted(self, x: np.ndarray, rows: np.ndarray,
                      out: np.ndarray, ctype: np.dtype) -> None:
        """Redundantly apply ``M^{-1}`` on a global-index work array.

        ``x`` and ``out`` are full-length float64 work arrays; only the
        entries at ``rows`` (a ghost-closure level, block-complete for
        ``ghost_compat == "block"``) must be read/written.  Results are
        rounded through ``ctype`` (the operand's container dtype) so the
        ghost values are bit-identical to what the owning rank's
        :meth:`apply` stores.
        """
        raise ConfigurationError(
            f"preconditioner {self.name!r} does not compose with the "
            f"CA matrix powers kernel (ghost_compat=None)")

    def charge_ghost_apply(self, comm, plan, level: int) -> None:
        """Charge one redundant ghosted apply over closure ``level``.

        ``plan`` is the :class:`~repro.distla.halo.GhostPlan`; per-rank
        costs follow each rank's own level size, mirroring what
        :meth:`apply` charges on owned rows alone.
        """
        raise ConfigurationError(
            f"preconditioner {self.name!r} does not compose with the "
            f"CA matrix powers kernel (ghost_compat=None)")

    def _check_ready(self) -> None:
        if not self.is_setup:
            raise ConfigurationError(
                f"{type(self).__name__}.apply called before setup()")


class IdentityPreconditioner(Preconditioner):
    """No-op preconditioner (``M = I``)."""

    name = "identity"
    ghost_compat = "pointwise"

    def setup(self, matrix: DistSparseMatrix) -> "IdentityPreconditioner":
        self._matrix = matrix
        return self

    def apply(self, x: DistMultiVector, out: DistMultiVector) -> None:
        out.assign_from(x)

    def apply_ghosted(self, x: np.ndarray, rows: np.ndarray,
                      out: np.ndarray, ctype: np.dtype) -> None:
        out[rows] = x[rows]

    def charge_ghost_apply(self, comm, plan, level: int) -> None:
        """The identity costs nothing (the MPK skips it entirely)."""
