"""Preconditioners for (s-step) GMRES.

The paper's preconditioned experiment (Fig. 13) uses "a local
Gauss-Seidel preconditioner (block Jacobi with Gauss-Seidel in each
block)" with the multicolor Gauss-Seidel of Kokkos Kernels [10]; that is
:class:`BlockJacobiPreconditioner` here.  Jacobi and Chebyshev polynomial
preconditioners round out the set (both communication-free or
SpMV-structured, hence compatible with the s-step MPK).
"""

from repro.precond.base import IdentityPreconditioner, Preconditioner
from repro.precond.jacobi import JacobiPreconditioner
from repro.precond.coloring import greedy_coloring
from repro.precond.gauss_seidel import LocalGaussSeidel
from repro.precond.block_jacobi import BlockJacobiPreconditioner
from repro.precond.polynomial import ChebyshevPreconditioner

__all__ = [
    "Preconditioner",
    "IdentityPreconditioner",
    "JacobiPreconditioner",
    "greedy_coloring",
    "LocalGaussSeidel",
    "BlockJacobiPreconditioner",
    "ChebyshevPreconditioner",
]
