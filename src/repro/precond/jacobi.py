"""Point Jacobi (diagonal) preconditioner — communication-free."""

from __future__ import annotations

import numpy as np

from repro.distla.multivector import DistMultiVector
from repro.distla.spmatrix import DistSparseMatrix
from repro.exceptions import NumericalError
from repro.precond.base import Preconditioner


class JacobiPreconditioner(Preconditioner):
    """``M = diag(A)``: one streaming scale per apply, no messages."""

    name = "jacobi"

    def __init__(self) -> None:
        super().__init__()
        self._inv_diag_shards: list[np.ndarray] = []

    def _setup_impl(self, matrix: DistSparseMatrix) -> None:
        diag = matrix.diagonal()
        if np.any(diag == 0.0):
            raise NumericalError(
                "Jacobi preconditioner requires a zero-free diagonal")
        inv = 1.0 / diag
        self._inv_diag_shards = [
            inv[matrix.partition.local_slice(r)][:, np.newaxis]
            for r in range(matrix.partition.ranks)
        ]

    def apply(self, x: DistMultiVector, out: DistMultiVector) -> None:
        self._check_ready()
        comm = x.comm
        for xs, os, inv in zip(x.shards, out.shards, self._inv_diag_shards):
            np.multiply(xs, inv, out=os)
        comm.charge_local(
            "scale", [comm.cost.blas1(s.size, n_streams=2, writes=1)
                      for s in x.shards])
