"""Point Jacobi (diagonal) preconditioner — communication-free."""

from __future__ import annotations

import numpy as np

from repro.distla.multivector import DistMultiVector
from repro.distla.spmatrix import DistSparseMatrix
from repro.exceptions import NumericalError
from repro.precond.base import Preconditioner


class JacobiPreconditioner(Preconditioner):
    """``M = diag(A)``: one streaming scale per apply, no messages."""

    name = "jacobi"
    ghost_compat = "pointwise"

    def __init__(self) -> None:
        super().__init__()
        self._inv_diag_shards: list[np.ndarray] = []
        self._inv_diag: np.ndarray | None = None

    def _setup_impl(self, matrix: DistSparseMatrix) -> None:
        diag = matrix.diagonal()
        if np.any(diag == 0.0):
            raise NumericalError(
                "Jacobi preconditioner requires a zero-free diagonal")
        inv = 1.0 / diag
        # the global inverse diagonal backs the CA-MPK's redundant
        # ghost-row applies (every rank holds its ghost rows' entries)
        self._inv_diag = inv
        self._inv_diag_shards = [
            inv[matrix.partition.local_slice(r)][:, np.newaxis]
            for r in range(matrix.partition.ranks)
        ]

    def apply(self, x: DistMultiVector, out: DistMultiVector) -> None:
        self._check_ready()
        comm = x.comm
        for xs, os, inv in zip(x.shards, out.shards, self._inv_diag_shards):
            np.multiply(xs, inv, out=os)
        comm.charge_local(
            "scale", [comm.cost.blas1(s.size, n_streams=2, writes=1)
                      for s in x.shards])

    def apply_ghosted(self, x: np.ndarray, rows: np.ndarray,
                      out: np.ndarray, ctype: np.dtype) -> None:
        self._check_ready()
        # same cast chain as apply(): multiply in float64, store through
        # the container dtype
        out[rows] = (x[rows] * self._inv_diag[rows]).astype(ctype)

    def charge_ghost_apply(self, comm, plan, level: int) -> None:
        comm.charge_local(
            "scale", [comm.cost.blas1(int(plan.level_rows[r, level]),
                                      n_streams=2, writes=1)
                      for r in range(plan.partition.ranks)])
