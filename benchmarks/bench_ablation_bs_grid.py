"""Ablation A2 bench — dense (bs, nodes) grid of two-stage ortho time."""

from __future__ import annotations


def test_ablation_bs_grid(benchmark, check):
    from repro.experiments import ablations

    table = benchmark(lambda: ablations.run_bs_grid())
    # Monotonicity holds over bs values that divide m; ragged last big
    # panels (bs = 40, 50 with m = 60) pay an extra partial second stage —
    # a real effect the paper's divisor-only sweep never exposes.
    divisors = [row for row in table.rows if 60 % int(row[0]) == 0]
    for col in range(1, len(table.headers)):
        series = [float(row[col]) for row in divisors]
        check(all(b <= a * 1.0001 for a, b in zip(series, series[1:])),
              f"ortho time monotone in divisor bs ({table.headers[col]})")
        full = [float(row[col]) for row in table.rows]
        check(min(full) == series[-1],
              f"bs = m is the global optimum ({table.headers[col]})")
    print()
    print(table.render())
