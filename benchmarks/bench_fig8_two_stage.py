"""Fig. 8 bench — two-stage approach on the growing-condition glued matrix."""

from __future__ import annotations


def test_fig8_two_stage(benchmark, check):
    from repro.experiments import fig8

    # paper parameters scaled down: (n, m, bs, s) = (20000, 180, 60, 5)
    table = benchmark(lambda: fig8.run(n=20_000, m=180, bs=60, s=5))
    # raw prefix conditioning grows geometrically (2^{j-1} * 1e7)...
    raw = [float(r[1]) for r in table.rows]
    check(raw[-1] > 1e9, "raw glued prefix conditioning blows up")
    # ...but stage 1 keeps the accumulated basis O(1)
    pre = [float(r[2]) for r in table.rows]
    check(max(pre) < 10.0,
          "stage-1 pre-processing keeps kappa O(1) (Theorem V.1)")
    # final orthogonality error O(eps)
    note = table.notes[0]
    err = float(note.split("=")[1].split("(")[0])
    check(err < 1e-12, "two-stage final error O(eps) (Fig. 8b)")
    print()
    print(table.render())
