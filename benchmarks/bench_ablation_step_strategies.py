"""Ablation A6 bench — step-size strategies (live solver runs)."""

from __future__ import annotations


def test_ablation_step_strategies(benchmark, check):
    from repro.experiments import ablations

    table = benchmark(lambda: ablations.run_step_strategies(nx=32,
                                                            maxiter=8000))
    rows = {row[0].split(" ")[0]: row for row in table.rows}
    # untuned aggressive step size stalls
    check(rows["fixed"][2] == "NO",
          "untuned s=15 breaks down (the tuning problem is real)")
    # both remedies converge
    check(rows["adaptive"][2] == "yes", "adaptive step size recovers")
    check(rows["conservative"][2] == "yes",
          "conservative s + two-stage converges without tuning")
    # the paper's answer synchronizes no more than the adaptive one
    check(int(rows["conservative"][5]) <= int(rows["adaptive"][5]),
          "two-stage needs no more syncs than runtime adaptation")
    print()
    print(table.render())
