"""Fig. 7 bench — one-stage BCGS-PIP2 on glued matrices."""

from __future__ import annotations


def test_fig7_bcgs_pip2(benchmark, check):
    from repro.experiments import fig7

    table = benchmark(lambda: fig7.run(n=10_000, seeds=3,
                                       kappas=[1e2, 1e5, 1e7]))
    rows = {row[0]: row for row in table.rows}
    # accumulated condition after one PIP pass stays O(1) (eq. (7))
    for key in ("100", "1.000e+05", "1.000e+07"):
        check(float(rows[key][1]) < 10.0,
              "kappa(Qhat) = O(1) after first BCGS-PIP pass")
    # second pass is O(eps) under condition (5)
    check(float(rows["1.000e+07"][3]) < 1e-13,
          "BCGS-PIP2 reaches O(eps) (Theorem IV.2)")
    # single-pass error grows with conditioning
    check(float(rows["100"][2]) < float(rows["1.000e+07"][2]),
          "single-pass error grows with kappa")
    print()
    print(table.render())
