"""Ablation A5 bench — intra-block kernel shootout."""

from __future__ import annotations


def test_ablation_intra_kernels(benchmark, check):
    from repro.experiments import ablations

    table = benchmark(lambda: ablations.run_intra_kernels(
        n=20_000, kappas=[1e4, 1e13]))
    rows = {row[0]: row for row in table.rows}
    # HHQR & TSQR unconditionally stable at kappa 1e13
    for name in ("hhqr", "tsqr"):
        check(float(rows[name][2]) < 1e-11, f"{name} stable at kappa 1e13")
    # CholQR2 breaks down far past the eps^{-1/2} cliff
    check(rows["cholqr2"][2] == "breakdown",
          "CholQR2 breaks down at kappa 1e13")
    # remedies survive
    for name in ("shifted_cholqr3", "mixed_precision_cholqr",
                 "sketched_cholqr"):
        check(rows[name][2] != "breakdown" and float(rows[name][2]) < 1e-9,
              f"{name} survives kappa 1e13")
    # modeled time: HHQR slowest (latency-bound), CholQR2 fastest
    check(float(rows["hhqr"][3]) > float(rows["cholqr2"][3]),
          "HHQR modeled time > CholQR2 (paper Sec. IV-A)")
    check(int(rows["hhqr"][4]) > int(rows["cholqr2"][4]),
          "HHQR synchronizes far more than CholQR2")
    print()
    print(table.render())
