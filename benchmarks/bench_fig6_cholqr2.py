"""Fig. 6 bench — CholQR2 error vs conditioning on Logscaled matrices."""

from __future__ import annotations


def test_fig6_cholqr2(benchmark, check):
    from repro.experiments import fig6

    table = benchmark(lambda: fig6.run(n=20_000, seeds=3,
                                       kappas=[1e2, 1e4, 1e6, 1e10]))
    rows = {row[0]: row for row in table.rows}
    # error after pass 1 grows with kappa (the kappa^2*eps law)
    check(float(rows["100"][2]) < float(rows["1.000e+04"][2])
          < float(rows["1.000e+06"][2]),
          "CholQR first-pass error grows as kappa^2")
    # past the eps^{-1/2} cliff, CholQR either breaks down or the
    # surviving factorization has lost all orthogonality (err1 ~ 1)
    far = rows["1.000e+10"]
    broke = not far[6].startswith("0/")
    lost = far[1] != "-" and float(far[1]) > 1e-3
    check(broke or lost, "CholQR unusable past kappa ~ eps^-1/2")
    # wherever pass 1 succeeds, pass 2 is O(eps)
    check(float(rows["1.000e+06"][5]) < 1e-13,
          "CholQR2 reaches O(eps) under condition (1)")
    print()
    print(table.render())
