"""Fig. 9 bench — MPK basis conditioning on SuiteSparse surrogates."""

from __future__ import annotations


def test_fig9_mpk_condition(benchmark, check):
    from repro.experiments import fig9

    matrices = ["offshore", "stomach", "Ga41As41H72", "HTC_336_4438"]
    table = benchmark(lambda: fig9.run(run_n=4000, m=30, s=5, bs=30,
                                       matrices=matrices))
    rows = {row[0]: row for row in table.rows}
    # all matrices reach O(eps) final orthogonality (paper Fig. 9c:
    # "the orthogonality errors of Q was O(eps) for all the matrices")
    for name in matrices:
        check(float(rows[name][5]) < 1e-10,
              f"{name}: final ortho error O(eps) (Fig. 9c)")
    # moderate matrices keep the Fig. 9b quantity bounded...
    moderate_max = max(float(rows["offshore"][4]), float(rows["stomach"][4]))
    check(moderate_max < 1e4,
          "moderate matrices satisfy condition (9) (Fig. 9b)")
    # ...while the hard pair (the paper's condition-(9) violators) stick
    # out by orders of magnitude
    for name in ("Ga41As41H72", "HTC_336_4438"):
        check(float(rows[name][4]) > 10 * moderate_max,
              f"{name}: accumulated panel conditioning violates (9)")
    # raw chains explode for everything (Fig. 9a)
    check(min(float(r[3]) for r in table.rows) > 1e8,
          "raw MPK chains degenerate without pre-processing (Fig. 9a)")
    print()
    print(table.render())
