"""Wall-time + modeled-cost benchmarks of the multi-precision subsystem.

Emits the ``BENCH_precision.json`` artifact (see ``conftest.py``'s alias
map).  Three groups:

* ``test_block_dot`` / ``test_block_update`` — the hot costed-BLAS
  kernels over fp64 vs fp32 storage under both engines, in a
  bandwidth-bound regime (15k rows per rank).  Each bench records the
  *modeled* seconds one call charges and asserts the storage-precision
  claim the subsystem exists for: fp32 panels are charged roughly half
  the fp64 bytes, so the bytes-dominated modeled time drops
  accordingly — and both engines charge identically.
* ``test_driver_mixed_two_stage`` — the dd-Gram two-stage scheme at a
  condition number (1e9) past the classical Pythagorean-Cholesky cliff,
  asserting the classical scheme breaks down where the mixed-precision
  scheme stays O(eps)-orthogonal while timing the mixed run.
* ``test_gmres_ir_fp32`` — end-to-end GMRES-IR: fp32-storage inner
  solves + fp64 refinement reach fp64-level true backward error.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import config
from repro.distla import blas as dblas
from repro.distla.multivector import DistMultiVector
from repro.exceptions import CholeskyBreakdownError
from repro.krylov.ir import gmres_ir
from repro.krylov.simulation import Simulation
from repro.matrices.stencil import laplace2d
from repro.ortho.analysis import orthogonality_error
from repro.ortho.base import BlockDriver
from repro.ortho.registry import get_scheme
from repro.parallel.communicator import SimComm
from repro.parallel.machine import generic_cpu
from repro.parallel.partition import Partition
from repro.parallel.tracing import Tracer
from repro.utils.rng import default_rng, random_with_condition

#: Bandwidth-bound regime: big local shards so the cost model's bytes
#: term dominates its latency term.
N = 120_000
RANKS = 8
KQ = 30
KV = 5


def _operands(storage: str):
    comm = SimComm(generic_cpu(), RANKS, Tracer())
    part = Partition(N, RANKS)
    rng = np.random.default_rng(0)
    q = DistMultiVector.from_global(
        rng.standard_normal((N, KQ)), part, comm, storage=storage)
    v = DistMultiVector.from_global(
        rng.standard_normal((N, KV)), part, comm, storage=storage)
    return comm, q, v


def _modeled(comm, fn) -> float:
    before = comm.tracer.clock
    fn()
    return comm.tracer.clock - before


@pytest.mark.parametrize("engine", ["loop", "batched"])
@pytest.mark.parametrize("storage", ["fp64", "fp32"])
def test_block_dot(benchmark, check, storage, engine):
    comm, q, v = _operands(storage)
    with config.engine_scope(engine):
        modeled = _modeled(comm, lambda: dblas.block_dot(q, v))
        if storage == "fp32":
            comm64, q64, v64 = _operands("fp64")
            ref = _modeled(comm64, lambda: dblas.block_dot(q64, v64))
            check(modeled < 0.65 * ref,
                  "fp32 storage must charge roughly half the fp64 bytes "
                  "on the bandwidth-bound Gram GEMM")
        benchmark.extra_info["storage"] = storage
        benchmark.extra_info["engine"] = engine
        benchmark.extra_info["ranks"] = RANKS
        benchmark.extra_info["modeled_seconds"] = modeled
        benchmark(lambda: dblas.block_dot(q, v))


@pytest.mark.parametrize("engine", ["loop", "batched"])
@pytest.mark.parametrize("storage", ["fp64", "fp32"])
def test_block_update(benchmark, check, storage, engine):
    comm, q, v = _operands(storage)
    r = np.random.default_rng(1).standard_normal((KQ, KV))
    with config.engine_scope(engine):
        modeled = _modeled(comm, lambda: dblas.block_update(v, q, r))
        if storage == "fp32":
            comm64, q64, v64 = _operands("fp64")
            ref = _modeled(comm64, lambda: dblas.block_update(v64, q64, r))
            check(modeled < 0.65 * ref,
                  "fp32 storage must charge roughly half the fp64 bytes "
                  "on the tall panel update")
        benchmark.extra_info["storage"] = storage
        benchmark.extra_info["engine"] = engine
        benchmark.extra_info["ranks"] = RANKS
        benchmark.extra_info["modeled_seconds"] = modeled
        benchmark(lambda: dblas.block_update(v, q, r))


def test_driver_mixed_two_stage(benchmark, check):
    """dd-Gram two-stage past the classical cliff (kappa = 1e9)."""
    rng = default_rng(2)
    v = random_with_condition(10_000, KQ, 1e9, rng)
    classical = get_scheme("two-stage")(big_step=KQ, breakdown="shift")
    with pytest.raises(CholeskyBreakdownError):
        BlockDriver(classical, 5).run(v)
    mixed = get_scheme("mixed-two-stage")(big_step=KQ, breakdown="shift")
    result = BlockDriver(mixed, 5).run(v)
    check(orthogonality_error(result.q) < 1e-13,
          "mixed-precision (dd-Gram) two-stage must stay O(eps)-orthogonal "
          "at kappa=1e9, past the classical Pythagorean-Cholesky cliff")
    benchmark(lambda: BlockDriver(mixed, 5).run(v))


def test_gmres_ir_fp32(benchmark, check):
    """End-to-end: fp32-storage inner solves + fp64 refinement."""
    a = laplace2d(24)

    def solve():
        sim = Simulation(a, ranks=RANKS, machine=generic_cpu())
        b = sim.ones_solution_rhs()
        return gmres_ir(sim, b, precision="fp32", tol=1e-12, s=5,
                        restart=30), b

    res, b = solve()
    true_res = float(np.linalg.norm(b - a @ res.x) / np.linalg.norm(b))
    check(res.converged and true_res < 1e-11,
          "GMRES-IR over fp32 storage must reach fp64-level true "
          "backward error")
    benchmark.extra_info["refinements"] = res.diagnostics["refinements"]
    benchmark.extra_info["iterations"] = res.iterations
    benchmark.extra_info["modeled_seconds"] = res.total_time
    benchmark(lambda: solve())
