"""Fig. 10 bench — ortho-time breakdown of BCGS2+CholQR2 vs node count."""

from __future__ import annotations


def test_fig10_breakdown_bcgs2(benchmark, check):
    from repro.experiments import fig10_12

    table = benchmark(lambda: fig10_12.run("fig10"))
    frac_dot = [float(row[5].rstrip("%")) for row in table.rows]
    # paper Fig. 10b: the dot-product (reduce-bearing) share grows with
    # node count and dominates at scale
    check(frac_dot[-1] > frac_dot[0],
          "dot-product share grows with node count")
    check(frac_dot[-1] > 50.0, "dot-products dominate at 32 nodes")
    print()
    print(table.render())
