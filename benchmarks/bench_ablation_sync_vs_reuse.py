"""Ablation A1 bench — latency vs data-reuse split of the two-stage win."""

from __future__ import annotations


def test_ablation_sync_vs_reuse(benchmark, check):
    from repro.experiments import ablations

    table = benchmark(lambda: ablations.run_sync_vs_reuse())
    full = float(table.rows[0][3].rstrip("x"))
    zero_lat = float(table.rows[1][3].rstrip("x"))
    # on the zero-latency machine the only remaining advantage is the
    # wider-GEMM data reuse; both effects must be real
    check(zero_lat > 1.05, "data-reuse alone still favors two-stage")
    check(full > zero_lat, "synchronization avoidance adds on top")
    print()
    print(table.render())
