"""End-to-end s-step GMRES solver benchmarks -> ``BENCH_gmres.json``.

The solver-level baseline CI gates: one full solve per configuration on
a 2-D Laplacian, covering the paper's classical pipeline (BCGS-PIP2 and
the two-stage scheme) under both kernel engines plus the randomized
solve path added with the sketching subsystem (fused
``SketchedTwoStageScheme`` + ``solve_mode="sketched"``).  Each bench
asserts its qualitative claim (convergence; the two-stage
synchronization advantage; the fused scheme's one-collective stage
passes) and records the *modeled* solver seconds and synchronization
counts as ``extra_info`` so modeled and wall time travel together in
the artifact.
"""

from __future__ import annotations

import pytest

from repro import config
from repro.krylov.options import SolverOptions
from repro.krylov.simulation import Simulation
from repro.krylov.sstep_gmres import sstep_gmres
from repro.matrices.stencil import laplace2d
from repro.ortho.bcgs_pip import BCGSPIP2Scheme
from repro.ortho.randomized import SketchedTwoStageScheme
from repro.ortho.two_stage import TwoStageScheme
from repro.parallel.machine import generic_cpu

NX = 24          # 576 unknowns
RANKS = 8
S = 5
RESTART = 30
TOL = 1e-8


def _solve(scheme_factory, engine=None, options=None):
    sim = Simulation(laplace2d(NX), ranks=RANKS, machine=generic_cpu(),
                     engine=engine)
    b = sim.ones_solution_rhs()
    return sstep_gmres(sim, b, s=S, restart=RESTART, tol=TOL,
                       maxiter=6000, scheme=scheme_factory(),
                       options=options)


def _record(benchmark, res, engine=None):
    benchmark.extra_info["ranks"] = RANKS
    benchmark.extra_info["n"] = NX * NX
    benchmark.extra_info["iterations"] = res.iterations
    benchmark.extra_info["sync_count"] = res.sync_count
    benchmark.extra_info["modeled_seconds"] = res.total_time
    if engine is not None:
        benchmark.extra_info["engine"] = engine


@pytest.mark.parametrize("engine", ["loop", "batched"])
def test_solve_two_stage(benchmark, check, engine):
    with config.engine_scope(engine):
        factory = lambda: TwoStageScheme(big_step=RESTART)  # noqa: E731
        res = _solve(factory, engine=engine)
        check(res.converged, "two-stage s-step GMRES converges on the "
                             "Laplacian")
        _record(benchmark, res, engine=engine)
        benchmark(lambda: _solve(factory, engine=engine))


def test_solve_bcgs_pip2(benchmark, check):
    res = _solve(BCGSPIP2Scheme)
    two = _solve(lambda: TwoStageScheme(big_step=RESTART))
    check(res.converged, "BCGS-PIP2 s-step GMRES converges")
    check(two.sync_count / max(two.iterations, 1)
          < res.sync_count / max(res.iterations, 1),
          "two-stage charges fewer synchronizations per iteration than "
          "one-stage BCGS-PIP2 (the paper's core claim)")
    _record(benchmark, res)
    benchmark(lambda: _solve(BCGSPIP2Scheme))


def test_solve_rgs_sketched(benchmark, check):
    """The randomized solve path: fused sketched two-stage scheme plus
    sketch-space least squares."""
    factory = lambda: SketchedTwoStageScheme(  # noqa: E731
        big_step=RESTART, fused=True)
    res = _solve(factory, options=SolverOptions(solve_mode="sketched"))
    classical = _solve(lambda: TwoStageScheme(big_step=RESTART))
    check(res.converged, "randomized GMRES converges on the Laplacian")
    check(res.diagnostics.get("solve_mode") == "sketched",
          "sketched solve path emits diagnostics")
    check(res.sync_count <= classical.sync_count
          * max(res.iterations, 1) / max(classical.iterations, 1) * 1.5,
          "fused single-collective stage passes keep the sketched solve "
          "in the same synchronization regime as the classical two-stage")
    _record(benchmark, res)
    benchmark(lambda: _solve(factory,
                             options=SolverOptions(solve_mode="sketched")))
