"""Fig. 11 bench — ortho-time breakdown of BCGS-PIP2 vs node count."""

from __future__ import annotations


def test_fig11_breakdown_pip2(benchmark, check):
    from repro.experiments import fig10_12

    pip2 = benchmark(lambda: fig10_12.run("fig11"))
    bcgs2 = fig10_12.run("fig10")
    # paper: BCGS-PIP2 cuts the reduce-bearing dot time vs BCGS2 at every
    # node count (5 syncs -> 2 per s steps + fewer Gram passes)
    for row_p, row_b in zip(pip2.rows, bcgs2.rows):
        check(float(row_p[1]) < float(row_b[1]),
              f"PIP2 dot time < BCGS2 dot time at {row_p[0]} nodes")
        check(float(row_p[4]) < float(row_b[4]),
              f"PIP2 total ortho < BCGS2 at {row_p[0]} nodes")
    print()
    print(pip2.render())
