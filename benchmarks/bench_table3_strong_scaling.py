"""Table III bench — strong scaling of the four solver configurations."""

from __future__ import annotations


def test_table3_strong_scaling(benchmark, check):
    from repro.experiments import table3

    table = benchmark(lambda: table3.run())
    # index rows: (nodes, config) -> (ortho, total)
    data = {(row[0], row[1]): (float(row[4]), float(row[5]))
            for row in table.rows}
    for nodes in (1, 4, 32):
        ortho = {cfg: data[(nodes, cfg)][0]
                 for cfg in ("gmres", "bcgs2", "pip2", "two_stage")}
        check(ortho["gmres"] > ortho["bcgs2"] > ortho["pip2"]
              > ortho["two_stage"],
              f"ortho ordering at {nodes} nodes")
    # the two-stage advantage over BCGS-PIP2 grows with node count
    # (latency share grows); paper: 1.7x at 1 node -> ~1.4-1.7x at scale
    adv1 = data[(1, "pip2")][0] / data[(1, "two_stage")][0]
    adv32 = data[(32, "pip2")][0] / data[(32, "two_stage")][0]
    check(1.2 < adv1 < 3.0, "two-stage vs PIP2 factor at 1 node")
    check(1.2 < adv32 < 3.0, "two-stage vs PIP2 factor at 32 nodes")
    # total-time speedup of two-stage over GMRES grows with nodes
    s1 = data[(1, "gmres")][1] / data[(1, "two_stage")][1]
    s32 = data[(32, "gmres")][1] / data[(32, "two_stage")][1]
    check(s32 > s1, "two-stage total speedup grows with node count")
    check(1.4 < s1 < 2.2, "1-node total speedup near paper's 1.7x")
    check(2.0 < s32 < 3.4, "32-node total speedup near paper's 2.5x")
    print()
    print(table.render())
