"""Host wall-time microbenchmarks of the library's hot kernels.

Unlike the artifact benches (which time *regenerating* a paper table),
these measure the real Python/NumPy execution speed of the core kernels —
the numbers a developer profiling this library cares about.

The ``test_block_dot`` / ``test_block_axpy`` / ``test_block_update`` /
``test_trsm`` benches run once per kernel-execution engine (``loop`` vs
``batched``) in the many-ranks strong-scaling regime where per-rank
Python dispatch dominates; ``scripts/compare_bench.py --check-speedup``
gates CI on the batched engine staying >= 1.5x faster on block_dot and
block_axpy.  Each engine bench also records the *modeled* seconds one
call charges, so ``BENCH_kernels.json`` tracks modeled vs. wall time.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import config
from repro.distla import blas
from repro.distla.multivector import DistMultiVector
from repro.krylov.simulation import Simulation
from repro.matrices.stencil import laplace2d
from repro.matrices.synthetic import logscaled_matrix
from repro.ortho.backend import DistBackend, NumpyBackend
from repro.ortho.base import BlockDriver
from repro.ortho.bcgs_pip import BCGSPIP2Scheme, bcgs_pip_panel
from repro.ortho.cholqr import CholQR2
from repro.ortho.two_stage import TwoStageScheme
from repro.parallel.communicator import SimComm
from repro.parallel.machine import generic_cpu
from repro.parallel.partition import Partition
from repro.parallel.tracing import Tracer

N = 120_000
K = 30

#: Engine-comparison setting: the strong-scaling regime (many ranks,
#: small per-rank shards) where the paper's machines actually operate and
#: where per-rank Python dispatch is the bottleneck the batched engine
#: removes.
ENGINE_N = 8_192
ENGINE_RANKS = 64


@pytest.fixture
def dist_setup():
    comm = SimComm(generic_cpu(), 8, Tracer())
    part = Partition(N, 8)
    rng = np.random.default_rng(0)
    arr = rng.standard_normal((N, K))
    # BCGS-PIP assumes an orthonormal prefix; orthonormalize columns 0..24
    q, _ = np.linalg.qr(arr[:, :25])
    arr[:, :25] = q
    basis = DistMultiVector.from_global(arr, part, comm)
    return comm, part, basis


@pytest.fixture
def engine_setup():
    """Strong-scaling operands for the engine comparison benches."""
    comm = SimComm(generic_cpu(), ENGINE_RANKS, Tracer())
    part = Partition(ENGINE_N, ENGINE_RANKS)
    rng = np.random.default_rng(0)
    basis = DistMultiVector.from_global(
        rng.standard_normal((ENGINE_N, K)), part, comm)
    return comm, part, basis


def _bench_engine(benchmark, engine, comm, op):
    """Benchmark ``op`` under ``engine``, recording modeled seconds too."""
    with config.engine_scope(engine):
        before = comm.tracer.clock
        op()
        benchmark.extra_info["engine"] = engine
        benchmark.extra_info["ranks"] = ENGINE_RANKS
        benchmark.extra_info["modeled_seconds"] = comm.tracer.clock - before
        benchmark(op)


@pytest.mark.parametrize("engine", ["loop", "batched"])
def test_block_dot(benchmark, engine_setup, engine):
    comm, part, basis = engine_setup
    q = basis.view_cols(slice(0, 25))
    v = basis.view_cols(slice(25, 30))
    _bench_engine(benchmark, engine, comm, lambda: blas.block_dot(q, v))


@pytest.mark.parametrize("engine", ["loop", "batched"])
def test_block_dot_fused(benchmark, engine_setup, engine):
    comm, part, basis = engine_setup
    q = basis.view_cols(slice(0, 25))
    v = basis.view_cols(slice(25, 30))
    _bench_engine(benchmark, engine, comm,
                  lambda: blas.block_dot_multi([(q, v), (v, v)]))


@pytest.mark.parametrize("engine", ["loop", "batched"])
def test_block_axpy(benchmark, engine_setup, engine):
    comm, part, basis = engine_setup
    v = basis.view_cols(slice(25, 30))
    out = DistMultiVector.zeros(part, comm, 5)
    _bench_engine(benchmark, engine, comm,
                  lambda: blas.lincomb(out, [(1.0, out), (-0.5, v)]))


@pytest.mark.parametrize("engine", ["loop", "batched"])
def test_block_update(benchmark, engine_setup, engine):
    comm, part, basis = engine_setup
    q = basis.view_cols(slice(0, 25))
    v = basis.view_cols(slice(25, 30))
    r = np.zeros((25, 5))
    _bench_engine(benchmark, engine, comm,
                  lambda: blas.block_update(v, q, r))


@pytest.mark.parametrize("engine", ["loop", "batched"])
def test_trsm(benchmark, engine_setup, engine):
    comm, part, basis = engine_setup
    v = basis.view_cols(slice(25, 30))
    # Identity R: full dtrsm work, but iterating the bench cannot drift v
    # into denormals/overflow and skew the timing.
    r = np.eye(5)
    _bench_engine(benchmark, engine, comm, lambda: blas.trsm_inplace(v, r))


def test_bcgs_pip_panel(benchmark, dist_setup):
    comm, part, basis = dist_setup
    backend = DistBackend(comm)
    work = basis.copy()

    def op():
        w = work.copy()
        return bcgs_pip_panel(backend, w, 25, 25, 30)

    benchmark(op)


def test_cholqr2_numpy(benchmark, rng=np.random.default_rng(1)):
    v = logscaled_matrix(N, 5, 1e4, rng)
    nb = NumpyBackend()
    benchmark(lambda: CholQR2().factor(nb, v.copy()))


def test_full_driver_pip2(benchmark):
    rng = np.random.default_rng(2)
    v = logscaled_matrix(40_000, 30, 1e4, rng)
    benchmark(lambda: BlockDriver(BCGSPIP2Scheme(), 5).run(v))


def test_full_driver_two_stage(benchmark):
    rng = np.random.default_rng(2)
    v = logscaled_matrix(40_000, 30, 1e4, rng)
    benchmark(lambda: BlockDriver(TwoStageScheme(big_step=30), 5).run(v))


def test_spmv_distributed(benchmark):
    sim = Simulation(laplace2d(120), ranks=8, machine=generic_cpu())
    x = sim.vector_from(np.random.default_rng(3).standard_normal(sim.n))
    out = sim.zeros(1)
    benchmark(lambda: sim.matrix.matvec(x, out=out))


def test_sstep_gmres_one_cycle(benchmark):
    from repro.krylov.sstep_gmres import sstep_gmres
    a = laplace2d(60)

    def solve():
        sim = Simulation(a, ranks=4, machine=generic_cpu())
        return sstep_gmres(sim, sim.ones_solution_rhs(), s=5, restart=30,
                           tol=1e-30, maxiter=30)

    benchmark(solve)
