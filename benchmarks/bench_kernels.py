"""Host wall-time microbenchmarks of the library's hot kernels.

Unlike the artifact benches (which time *regenerating* a paper table),
these measure the real Python/NumPy execution speed of the core kernels —
the numbers a developer profiling this library cares about.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.distla import blas
from repro.distla.multivector import DistMultiVector
from repro.krylov.simulation import Simulation
from repro.matrices.stencil import laplace2d
from repro.matrices.synthetic import logscaled_matrix
from repro.ortho.backend import DistBackend, NumpyBackend
from repro.ortho.base import BlockDriver
from repro.ortho.bcgs_pip import BCGSPIP2Scheme, bcgs_pip_panel
from repro.ortho.cholqr import CholQR2
from repro.ortho.two_stage import TwoStageScheme
from repro.parallel.communicator import SimComm
from repro.parallel.machine import generic_cpu
from repro.parallel.partition import Partition
from repro.parallel.tracing import Tracer

N = 120_000
K = 30


@pytest.fixture
def dist_setup():
    comm = SimComm(generic_cpu(), 8, Tracer())
    part = Partition(N, 8)
    rng = np.random.default_rng(0)
    arr = rng.standard_normal((N, K))
    # BCGS-PIP assumes an orthonormal prefix; orthonormalize columns 0..24
    q, _ = np.linalg.qr(arr[:, :25])
    arr[:, :25] = q
    basis = DistMultiVector.from_global(arr, part, comm)
    return comm, part, basis


def test_block_dot(benchmark, dist_setup):
    comm, part, basis = dist_setup
    q = basis.view_cols(slice(0, 25))
    v = basis.view_cols(slice(25, 30))
    benchmark(lambda: blas.block_dot(q, v))


def test_bcgs_pip_panel(benchmark, dist_setup):
    comm, part, basis = dist_setup
    backend = DistBackend(comm)
    work = basis.copy()

    def op():
        w = work.copy()
        return bcgs_pip_panel(backend, w, 25, 25, 30)

    benchmark(op)


def test_cholqr2_numpy(benchmark, rng=np.random.default_rng(1)):
    v = logscaled_matrix(N, 5, 1e4, rng)
    nb = NumpyBackend()
    benchmark(lambda: CholQR2().factor(nb, v.copy()))


def test_full_driver_pip2(benchmark):
    rng = np.random.default_rng(2)
    v = logscaled_matrix(40_000, 30, 1e4, rng)
    benchmark(lambda: BlockDriver(BCGSPIP2Scheme(), 5).run(v))


def test_full_driver_two_stage(benchmark):
    rng = np.random.default_rng(2)
    v = logscaled_matrix(40_000, 30, 1e4, rng)
    benchmark(lambda: BlockDriver(TwoStageScheme(big_step=30), 5).run(v))


def test_spmv_distributed(benchmark):
    sim = Simulation(laplace2d(120), ranks=8, machine=generic_cpu())
    x = sim.vector_from(np.random.default_rng(3).standard_normal(sim.n))
    out = sim.zeros(1)
    benchmark(lambda: sim.matrix.matvec(x, out=out))


def test_sstep_gmres_one_cycle(benchmark):
    from repro.krylov.sstep_gmres import sstep_gmres
    a = laplace2d(60)

    def solve():
        sim = Simulation(a, ranks=4, machine=generic_cpu())
        return sstep_gmres(sim, sim.ones_solution_rhs(), s=5, restart=30,
                           tol=1e-30, maxiter=30)

    benchmark(solve)
