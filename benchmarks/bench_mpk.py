"""Matrix powers kernel benchmarks -> ``BENCH_mpk.json``.

Standard vs communication-avoiding basis generation (one restart cycle
of s-step panels) under both kernel engines.  Each bench asserts the
CA contract — bit-identical basis, exactly one halo exchange per panel
against ``s`` for the standard kernel — and records the modeled
seconds, halo counts and (for CA) a latency-dominated regime's modeled
speedup as ``extra_info``, so the committed artifact documents the
acceptance claim: CA-MPK's modeled time wins in at least one
latency-dominated machine regime.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import config
from repro.experiments.ca_mpk_tradeoff import _summit_lat, generate_basis
from repro.krylov.sstep_gmres import _panel_bounds
from repro.parallel.machine import summit

NX = 24          # 576 unknowns
RANKS = 8
S = 5
RESTART = 30
PANELS = len(_panel_bounds(S, RESTART + 1))


def _gen(machine, mode):
    return generate_basis(machine, mode, nx=NX, ranks=RANKS, s=S,
                          restart=RESTART)


def _record(benchmark, stats, engine=None):
    benchmark.extra_info["ranks"] = RANKS
    benchmark.extra_info["n"] = NX * NX
    benchmark.extra_info["modeled_seconds"] = stats["seconds"]
    benchmark.extra_info["halo_count"] = stats["halo_count"]
    if engine is not None:
        benchmark.extra_info["engine"] = engine


@pytest.mark.parametrize("engine", ["loop", "batched"])
@pytest.mark.parametrize("mode", ["standard", "ca"])
def test_mpk_basis(benchmark, check, mode, engine):
    with config.engine_scope(engine):
        stats = _gen(summit(), mode)
        if mode == "ca":
            ref = _gen(summit(), "standard")
            check(np.array_equal(stats["basis"], ref["basis"]),
                  "CA-MPK generates a bit-identical basis to the standard "
                  "kernel")
        expected = PANELS if mode == "ca" else RESTART
        check(stats["halo_count"] == expected,
              f"{mode} MPK charges {expected} halo exchanges per cycle")
        _record(benchmark, stats, engine=engine)
        benchmark(lambda: _gen(summit(), mode))


def test_mpk_ca_latency_speedup(benchmark, check):
    """The acceptance claim: modeled CA speedup > 1 in a
    latency-dominated regime."""
    lat = _summit_lat(16.0)
    std = _gen(lat, "standard")
    ca = _gen(lat, "ca")
    speedup = std["seconds"] / ca["seconds"]
    check(speedup > 1.0,
          "CA-MPK modeled time wins in the latency-dominated regime")
    benchmark.extra_info["modeled_speedup_lat16x"] = speedup
    benchmark.extra_info["modeled_seconds_standard"] = std["seconds"]
    benchmark.extra_info["modeled_seconds_ca"] = ca["seconds"]
    benchmark.extra_info["halo_standard"] = std["halo_count"]
    benchmark.extra_info["halo_ca"] = ca["halo_count"]
    benchmark(lambda: _gen(lat, "ca"))
