"""Fig. 12 bench — ortho-time breakdown of the two-stage scheme (bs = m)."""

from __future__ import annotations


def test_fig12_breakdown_two_stage(benchmark, check):
    from repro.experiments import fig10_12

    two = benchmark(lambda: fig10_12.run("fig12"))
    pip2 = fig10_12.run("fig11")
    for row_t, row_p in zip(two.rows, pip2.rows):
        nodes = row_t[0]
        # paper: the two-stage approach "avoids these global reduces and
        # further reduced the orthogonalization time"
        check(float(row_t[7]) < float(row_p[7]),
              f"two-stage reduce-only time < PIP2 at {nodes} nodes")
        check(float(row_t[4]) < float(row_p[4]),
              f"two-stage total ortho < PIP2 at {nodes} nodes")
    print()
    print(two.render())
