"""Wall-time microbenchmarks of the random-sketching subsystem.

Emits the ``BENCH_sketch.json`` artifact (see ``conftest.py``'s alias
map).  Three groups:

* ``test_sketch_apply`` — the distributed shard-local sketch under both
  kernel engines and all three operator families, in the many-ranks
  strong-scaling regime of ``bench_kernels.py``; each bench records the
  *modeled* seconds one application charges, which must be identical
  across engines (the cost-equivalence invariant).
* ``test_sketched_cholqr`` — the randomized intra-block factorization
  on the distributed backend.
* ``test_driver_*`` — full :class:`BlockDriver` runs of the randomized
  inter-block schemes at a condition number (1e12) where the classical
  two-stage scheme breaks down, asserting the stability claim the
  subsystem exists for while timing it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import config
from repro.distla.multivector import DistMultiVector
from repro.matrices.synthetic import logscaled_matrix
from repro.ortho import get_intra_qr, get_scheme
from repro.ortho.analysis import orthogonality_error
from repro.ortho.backend import DistBackend
from repro.ortho.base import BlockDriver
from repro.parallel.communicator import SimComm
from repro.parallel.machine import generic_cpu
from repro.parallel.partition import Partition
from repro.parallel.tracing import Tracer
from repro.sketch import make_operator, sketch_multivector, sketch_rows

#: Strong-scaling regime of the engine benches in ``bench_kernels.py``.
ENGINE_N = 8_192
ENGINE_RANKS = 64
K = 30


@pytest.fixture
def sketch_setup():
    comm = SimComm(generic_cpu(), ENGINE_RANKS, Tracer())
    part = Partition(ENGINE_N, ENGINE_RANKS)
    rng = np.random.default_rng(0)
    basis = DistMultiVector.from_global(
        rng.standard_normal((ENGINE_N, K)), part, comm)
    return comm, part, basis


@pytest.mark.parametrize("engine", ["loop", "batched"])
@pytest.mark.parametrize("family", ["sparse", "gaussian", "srht"])
def test_sketch_apply(benchmark, sketch_setup, engine, family):
    comm, part, basis = sketch_setup
    m = sketch_rows(K, ENGINE_N, family=family)
    op = make_operator(family, ENGINE_N, m, seed=0xC0FFEE)
    with config.engine_scope(engine):
        before = comm.tracer.clock
        sketch_multivector(basis, op)
        benchmark.extra_info["engine"] = engine
        benchmark.extra_info["family"] = family
        benchmark.extra_info["ranks"] = ENGINE_RANKS
        benchmark.extra_info["m_rows"] = m
        benchmark.extra_info["modeled_seconds"] = comm.tracer.clock - before
        benchmark(lambda: sketch_multivector(basis, op))


def test_sketched_cholqr(benchmark):
    comm = SimComm(generic_cpu(), 8, Tracer())
    part = Partition(120_000, 8)
    rng = np.random.default_rng(1)
    v = logscaled_matrix(120_000, 5, 1e10, rng)
    dv = DistMultiVector.from_global(v, part, comm)
    kernel = get_intra_qr("sketched_cholqr")()
    backend = DistBackend(comm)
    work = dv.copy()

    def op():
        w = work.copy()
        return kernel.factor(backend, w)

    benchmark(op)


def _driver_bench(benchmark, check, scheme_name, **scheme_kw):
    rng = np.random.default_rng(2)
    v = logscaled_matrix(40_000, K, 1e12, rng)
    scheme = get_scheme(scheme_name)(**scheme_kw)
    result = BlockDriver(scheme, 5).run(v)
    check(orthogonality_error(result.q) < 1e-11,
          f"{scheme_name} must stay O(eps)-orthogonal at kappa=1e12, "
          f"past the classical Pythagorean-Cholesky cliff")
    benchmark(lambda: BlockDriver(scheme, 5).run(v))


def test_driver_rbcgs(benchmark, check):
    _driver_bench(benchmark, check, "rbcgs")


def test_driver_sketched_two_stage(benchmark, check):
    _driver_bench(benchmark, check, "sketched-two-stage", big_step=K)
