"""Ablation A3 bench — Krylov basis choice vs panel conditioning."""

from __future__ import annotations


def test_ablation_basis(benchmark, check):
    from repro.experiments import ablations

    table = benchmark(lambda: ablations.run_basis_conditioning(
        nx=24, s_values=[4, 8, 12]))
    # at the largest step size the Chebyshev basis must be far better
    # conditioned than the monomial one (paper Sec. VI remark)
    last = table.rows[-1]
    monomial = float(last[1])
    chebyshev = float(last[3])
    check(chebyshev < monomial / 10.0,
          "Chebyshev basis conditions far better than monomial at s=12")
    # monomial conditioning grows with s
    mono = [float(r[1]) for r in table.rows]
    check(mono[0] < mono[-1], "monomial kappa grows with step size")
    print()
    print(table.render())
