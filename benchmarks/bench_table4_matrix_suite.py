"""Table IV bench — per-iteration times across the matrix suite."""

from __future__ import annotations


def test_table4_matrix_suite(benchmark, check):
    from repro.experiments import table4

    table = benchmark(lambda: table4.run())
    # index: (matrix, config) -> (ortho_ms, total_ms)
    data = {(r[0], r[1]): (float(r[3]), float(r[4])) for r in table.rows}
    matrices = {r[0] for r in table.rows}
    for mat in matrices:
        ortho = {cfg: data[(mat, cfg)][0]
                 for cfg in ("gmres", "bcgs2", "pip2", "two_stage")}
        check(ortho["gmres"] > ortho["bcgs2"] > ortho["pip2"]
              > ortho["two_stage"],
              f"{mat}: per-iteration ortho ordering (Table IV)")
        # paper: total speedups of the two-stage approach 2.2x-2.9x
        total_spdp = data[(mat, "gmres")][1] / data[(mat, "two_stage")][1]
        check(1.8 < total_spdp < 3.6,
              f"{mat}: two-stage total speedup in the paper's band "
              f"(got {total_spdp:.1f}x)")
    print()
    print(table.render())
