"""Table II bench — two-stage second-step-size sweep on 4 V100s."""

from __future__ import annotations


def test_table2_bs_sweep(benchmark, check):
    from repro.experiments import table2

    table = benchmark(lambda: table2.run())
    ortho = {row[0]: float(row[3]) for row in table.rows}
    total = {row[0]: float(row[4]) for row in table.rows}
    # paper Table II ordering: GMRES > s-step(BCGS2) > bs=5 > 20 > 40 > 60
    order = ["gmres", "bcgs2", "two_stage_bs5", "two_stage_bs20",
             "two_stage_bs40", "two_stage_bs60"]
    for a, b in zip(order, order[1:]):
        check(ortho[a] > ortho[b], f"ortho({a}) > ortho({b})")
        check(total[a] > total[b], f"total({a}) > total({b})")
    # rough factor: bs=60 cuts ortho vs bs=5 by ~1.7x in the paper
    ratio = ortho["two_stage_bs5"] / ortho["two_stage_bs60"]
    check(1.2 < ratio < 3.5, "bs=m vs bs=s ortho factor in paper ballpark")
    print()
    print(table.render())


def test_table2_measured_iteration_quantization(benchmark, check):
    """Reduced-scale convergence: iterations quantize to bs multiples."""
    from repro.experiments import table2

    iters = benchmark(lambda: table2.measured_iterations(nx=64, maxiter=20000))
    check(iters["two_stage_bs60"] % 60 == 0,
          "two-stage(bs=60) converges on a big-panel boundary")
    check(iters["two_stage_bs5"] % 5 == 0,
          "bs=5 converges on a panel boundary")
    check(iters["gmres"] <= iters["two_stage_bs60"],
          "standard GMRES stops earliest (any iteration)")
