"""Benchmark-harness fixtures.

Each bench file regenerates one paper artifact (table/figure) at a
benchmark-friendly scale, asserts its qualitative claim (who wins / in
which direction), and times the regeneration with pytest-benchmark:

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest


@pytest.fixture
def check():
    """Assertion helper that reports the failing claim clearly."""
    def _check(condition: bool, claim: str) -> None:
        assert condition, f"paper claim not reproduced: {claim}"
    return _check
