"""Benchmark-harness fixtures and machine-readable artifact emission.

Each bench file regenerates one paper artifact (table/figure) at a
benchmark-friendly scale, asserts its qualitative claim (who wins / in
which direction), and times the regeneration with pytest-benchmark:

    PYTHONPATH=src python -m pytest benchmarks/ --benchmark-only

At session end every module that ran benchmarks is serialized to
``BENCH_<name>.json`` (``bench_kernels.py`` -> ``BENCH_kernels.json``)
in ``$REPRO_BENCH_DIR`` (default: current directory) via
:mod:`repro.bench.artifacts` — the documents CI uploads and diffs with
``scripts/compare_bench.py``.
"""

from __future__ import annotations

import os
from collections import defaultdict
from pathlib import Path

import pytest


def pytest_collection_modifyitems(items):
    """Mark everything under benchmarks/ with the ``bench`` marker."""
    this_dir = Path(__file__).parent
    for item in items:
        try:
            in_benchmarks = Path(item.fspath).parent == this_dir
        except Exception:
            in_benchmarks = False
        if in_benchmarks:
            item.add_marker(pytest.mark.bench)


@pytest.fixture
def check():
    """Assertion helper that reports the failing claim clearly."""
    def _check(condition: bool, claim: str) -> None:
        assert condition, f"paper claim not reproduced: {claim}"
    return _check


#: Modules whose artifact name differs from the ``bench_<name>`` stem.
ARTIFACT_ALIASES = {"sketch_kernels": "sketch", "sstep_gmres": "gmres",
                    "precision_kernels": "precision"}


def _artifact_name(fullname: str) -> str:
    """``benchmarks/bench_kernels.py::test_x[a]`` -> ``kernels``."""
    module = fullname.split("::", 1)[0]
    stem = Path(module).stem
    name = stem[len("bench_"):] if stem.startswith("bench_") else stem
    return ARTIFACT_ALIASES.get(name, name)


def pytest_sessionfinish(session, exitstatus):
    """Write one ``BENCH_<name>.json`` per benchmark module that ran."""
    bs = getattr(session.config, "_benchmarksession", None)
    if bs is None or not bs.benchmarks:
        return
    from repro.bench.artifacts import from_pytest_benchmarks

    by_module = defaultdict(list)
    for bench in bs.benchmarks:
        by_module[_artifact_name(bench.fullname)].append(bench)
    out_dir = Path(os.environ.get("REPRO_BENCH_DIR", "."))
    tw = session.config.get_terminal_writer()
    for name, benches in sorted(by_module.items()):
        artifact = from_pytest_benchmarks(name, benches)
        path = artifact.write(out_dir / f"BENCH_{name}.json")
        tw.line(f"bench artifact written: {path}")
