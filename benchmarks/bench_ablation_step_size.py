"""Ablation A4 bench — step-size stability of one-stage vs two-stage."""

from __future__ import annotations


def test_ablation_step_size(benchmark, check):
    from repro.experiments import ablations

    table = benchmark(lambda: ablations.run_step_size_cliff(n=5000))
    # both schemes keep O(eps) error at the conservative s = 5 ...
    row5 = next(r for r in table.rows if r[0] == 5)
    for cell in (row5[1], row5[2]):
        check(cell != "breakdown" and float(cell) < 1e-12,
              "s=5 stable for one-stage and two-stage")
    # ... and the two-stage scheme is at least as robust at every s
    for row in table.rows:
        if row[1] == "breakdown":
            continue
        if row[2] == "breakdown":
            check(False, f"two-stage broke where one-stage survived (s={row[0]})")
    print()
    print(table.render())
