"""Fig. 13 bench — Gauss-Seidel-preconditioned per-iteration breakdown."""

from __future__ import annotations


def test_fig13_preconditioned(benchmark, check):
    from repro.experiments import fig13, table3

    table = benchmark(lambda: fig13.run())
    data = {(r[0], r[1]): dict(spmv=float(r[2]), ortho=float(r[3]),
                               total=float(r[4])) for r in table.rows}
    plain = table3.modeled_config_times(32)
    # ortho ordering survives preconditioning at every node count
    for nodes in (1, 8, 32):
        ortho = {cfg: data[(nodes, cfg)]["ortho"]
                 for cfg in ("gmres", "bcgs2", "pip2", "two_stage")}
        check(ortho["gmres"] > ortho["bcgs2"] > ortho["pip2"]
              > ortho["two_stage"],
              f"preconditioned ortho ordering at {nodes} nodes")
    # total speedup shrinks vs the unpreconditioned Table III because the
    # preconditioner inflates the non-ortho share
    pre_spdp = (data[(32, "gmres")]["total"]
                / data[(32, "two_stage")]["total"])
    plain_spdp = plain["gmres"]["total"] / plain["two_stage"]["total"]
    check(pre_spdp < plain_spdp,
          "preconditioning shrinks the total-time speedup (paper Fig. 13)")
    check(pre_spdp > 1.2, "two-stage still wins overall with GS precond")
    print()
    print(table.render())
